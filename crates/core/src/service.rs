//! Analysis as a service: a shared, long-lived [`AnalysisService`] that
//! runs many analysis jobs concurrently on a fixed worker pool.
//!
//! This is the in-process engine behind the `privacyscoped` daemon, but it
//! is a plain library type: embedders submit [`JobSpec`]s, get back opaque
//! job ids, and wait for [`JobOutcome`]s. The service owns:
//!
//! * a FIFO **run queue** drained by `pool` worker threads — admission
//!   order is service order, so no job starves behind later arrivals;
//! * the **job lifecycle** `queued → running → suspended → done/failed`.
//!   A suspended job parked its exploration into a PR 3 checkpoint at a
//!   wave boundary and re-entered the queue at the tail; when it reaches
//!   the front again the next worker resumes it from the snapshot —
//!   possibly a *different* worker thread (job migration). The checkpoint
//!   invariant guarantees the final report is byte-identical to an
//!   uninterrupted run;
//! * **fair round-robin scheduling**: with a time slice configured, a
//!   background scheduler arms the [`YieldToken`] of any running job that
//!   has held a worker past its slice while other jobs wait, converting
//!   pool monopolisation into suspension + requeue;
//! * **per-job deadlines**: a job's wall-clock budget is fixed at first
//!   start and each slice runs with the *remaining* budget, so suspension
//!   cannot be used to outlive a deadline;
//! * **progress streaming**: a job submitted with a progress callback gets
//!   a private telemetry handle whose JSONL trace records are forwarded,
//!   line by line, as they happen (the daemon relays them to the client).
//!
//! Telemetry is observational and the yield/cancel tokens are excluded
//! from checkpoint fingerprints, so none of this machinery perturbs
//! analysis results: the same [`JobSpec`] yields the same reports whether
//! it ran via the CLI, on a 1-worker pool, on an 8-worker pool, or across
//! a suspend/resume migration.
//!
//! # Crash recovery and overload resilience
//!
//! Every lifecycle transition is durably journaled (see [`crate::journal`])
//! before it takes effect, so a `kill -9` loses no admitted job: on the
//! next [`AnalysisService::start`] with the same spool directory, a
//! recovery pass replays the journal, re-enqueues jobs that never
//! finished (resuming suspended ones from their validated spool
//! checkpoints), garbage-collects orphaned spool files, and compacts the
//! journal. A recovered job's report is byte-identical to an
//! uninterrupted run — re-execution and checkpoint resume are both
//! deterministic.
//!
//! Admission is bounded: [`ServiceConfig::max_queue`] caps queue depth
//! and [`ServiceConfig::max_job_paths`] caps the per-job path budget;
//! [`AnalysisService::submit`] returns a typed [`RejectReason`] instead
//! of wedging the pool. [`AnalysisService::drain`] implements graceful
//! shutdown: stop admitting, park running jobs at their next wave
//! boundary into the spool (journaled), and leave the queue for the next
//! start to recover.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use symexec::degrade::{CancelToken, Degradation, YieldToken};

use crate::analyzer::{Analyzer, AnalyzerOptions};
use crate::journal::{self, Journal, JournalRecord, RecoverySummary};
use crate::report::Report;

/// Locks a mutex, riding through poisoning: a worker that panicked while
/// holding the scheduler lock must not wedge the whole service (the state
/// it guards is a queue + status map, always structurally valid).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Everything needed to run one analysis job: the enclave inputs plus the
/// per-job engine options the CLI would have taken from flags.
/// Serializable so the job journal can persist admitted jobs across a
/// daemon crash.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Mini-C enclave source.
    pub source: String,
    /// EDL interface text.
    pub edl: String,
    /// Optional XML analysis configuration (§V-C).
    pub config_xml: Option<String>,
    /// Analyze one ECALL (`None` = every target).
    pub function: Option<String>,
    /// Path budget (see [`AnalyzerOptions::max_paths`]).
    pub max_paths: usize,
    /// Symbolic loop bound (see [`AnalyzerOptions::loop_bound`]).
    pub loop_bound: usize,
    /// Engine exploration threads *within* the job (0 = all cores). This is
    /// orthogonal to the service pool size; reports are byte-identical at
    /// any setting.
    pub workers: usize,
    /// Wall-clock budget for the whole job, across suspensions.
    pub deadline_ms: Option<u64>,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            source: String::new(),
            edl: String::new(),
            config_xml: None,
            function: None,
            max_paths: 4096,
            loop_bound: 4,
            workers: 0,
            deadline_ms: None,
        }
    }
}

/// Job lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the run queue (first submission, or requeued after a
    /// suspension — [`JobState::Suspended`] is reported until it requeues).
    Queued,
    /// A pool worker is exploring it right now.
    Running,
    /// Parked in a checkpoint at a wave boundary; back in the queue tail.
    Suspended,
    /// Finished; the outcome carries the reports.
    Done,
    /// The analyzer rejected the inputs (parse/sema/EDL/config error).
    Failed,
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Suspended => "suspended",
            JobState::Done => "done",
            JobState::Failed => "failed",
        })
    }
}

/// Terminal result of a job, with the CLI's exit-code convention: 0 secure
/// and complete, 1 violations found, 2 input error, 3 secure but paths
/// were lost (the verdict is a lower bound).
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// One report per analyzed target, in target order. Empty on failure.
    pub reports: Vec<Report>,
    /// CLI-convention exit code for this job.
    pub exit: u8,
    /// The input error, when `exit == 2`.
    pub error: Option<String>,
    /// How many times the job was suspended and migrated before finishing.
    pub suspensions: u32,
    /// Queue wait before the first slice started.
    pub queued_for: Duration,
    /// Submission-to-completion wall time.
    pub total: Duration,
}

/// Progress callback: receives the job id and each JSONL telemetry record
/// (no trailing newline) emitted while the job runs. The id is passed so a
/// consumer registered at submission time can frame records without racing
/// the pool (a worker may start the job before `submit` returns).
pub type ProgressFn = Arc<dyn Fn(u64, &str) + Send + Sync>;

/// Service construction parameters.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Pool worker threads (clamped to at least 1).
    pub pool: usize,
    /// Fair-share time slice: a running job past this age is suspended
    /// whenever other jobs are waiting. `None` disables preemption (jobs
    /// still round-robin through the FIFO queue).
    pub slice: Option<Duration>,
    /// Directory for suspension checkpoints and the job journal (created
    /// if missing).
    pub spool: PathBuf,
    /// Admission cap on queue depth: a submit that would leave more than
    /// this many jobs waiting is rejected with
    /// [`RejectReason::QueueFull`]. `0` = unbounded.
    pub max_queue: usize,
    /// Admission cap on a job's path budget ([`JobSpec::max_paths`]):
    /// larger requests are rejected with [`RejectReason::PathBudget`]
    /// instead of letting one job monopolise memory. `0` = uncapped.
    pub max_job_paths: usize,
    /// Telemetry handle for recovery spans and shed/reject/park counters
    /// (disabled = all no-ops; observational either way).
    pub telemetry: telemetry::Telemetry,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            pool: 2,
            slice: None,
            spool: std::env::temp_dir().join(format!("privacyscope-spool-{}", std::process::id())),
            max_queue: 0,
            max_job_paths: 0,
            telemetry: telemetry::Telemetry::disabled(),
        }
    }
}

/// Why a submission was refused at the door. Admission control converts
/// overload into a typed, observable answer — never a dropped connection
/// or a wedged queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The run queue is at its configured depth cap.
    QueueFull { depth: usize, limit: usize },
    /// The job asked for a larger path budget than the service admits.
    PathBudget { requested: usize, cap: usize },
    /// The service is draining for shutdown and admits nothing new.
    Draining,
}

impl RejectReason {
    /// Stable machine-readable class, used in protocol frames and
    /// telemetry counter names.
    pub fn code(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "queue_full",
            RejectReason::PathBudget { .. } => "path_budget",
            RejectReason::Draining => "draining",
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { depth, limit } => write!(
                f,
                "queue is full ({depth} waiting, limit {limit}); retry later"
            ),
            RejectReason::PathBudget { requested, cap } => write!(
                f,
                "requested path budget {requested} exceeds the service cap {cap}"
            ),
            RejectReason::Draining => {
                f.write_str("service is draining for shutdown and admits no new jobs")
            }
        }
    }
}

impl std::error::Error for RejectReason {}

/// One job's row in a [`ServiceStats`] snapshot. Field order is the wire
/// order (`ServerFrame::Stats` serializes these structs directly), so it
/// is part of the protocol's deterministic-field-order contract.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSnapshot {
    /// The job id.
    pub id: u64,
    /// Lifecycle state name (`queued`/`running`/`suspended`/`done`/
    /// `failed`).
    pub state: String,
    /// How many times the job has suspended and migrated so far.
    pub suspensions: u64,
    /// Waves completed at the last suspension (0 until first legible
    /// boundary).
    pub waves: u64,
    /// In-flight path states parked at the last suspension (0 once
    /// terminal).
    pub frontier: u64,
    /// Exploration steps attributed so far (from the per-source profile at
    /// the last suspension or completion).
    pub steps: u64,
}

/// A point-in-time snapshot of the service: queue, pool utilization, and
/// per-job lifecycle + progress. Deterministic: jobs come out in id order
/// and field order is fixed by declaration.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Jobs waiting in the run queue right now.
    pub queue_depth: u64,
    /// Configured pool size (worker threads).
    pub pool: u64,
    /// Workers currently running a slice.
    pub busy: u64,
    /// Whether the service is draining for shutdown.
    pub draining: bool,
    /// Every job the service knows about, in id order.
    pub jobs: Vec<JobSnapshot>,
}

struct Job {
    spec: JobSpec,
    progress: Option<ProgressFn>,
    state: JobState,
    /// Cooperative suspension handle, shared with the engine while running.
    yield_hook: YieldToken,
    cancel: CancelToken,
    /// Checkpoint to resume from (set while suspended).
    resume_from: Option<PathBuf>,
    /// Absolute deadline, fixed when the first slice starts.
    deadline_at: Option<Instant>,
    submitted: Instant,
    first_started: Option<Instant>,
    /// When the current slice started (running jobs only).
    slice_start: Option<Instant>,
    /// Whether the current slice can honour a yield request (single-target
    /// explorations only — multi-target jobs run to completion).
    suspendable: bool,
    /// Park instead of requeue at the next suspension (disconnect policy
    /// or drain): the job stays `Suspended` in the spool until a later
    /// recovery pass picks it back up.
    parked: bool,
    suspensions: u32,
    outcome: Option<JobOutcome>,
    /// Progress observed at the last wave-boundary suspension (or
    /// completion): waves completed, in-flight frontier parked, and steps
    /// attributed so far. Zero until the job first suspends or finishes —
    /// progress is only legible at deterministic boundaries.
    waves_done: u64,
    frontier: u64,
    steps_done: u64,
}

struct State {
    queue: VecDeque<u64>,
    jobs: BTreeMap<u64, Job>,
    next_id: u64,
    shutdown: bool,
    /// Drain mode: admission rejects, workers stop dequeuing, running
    /// jobs park at their next wave boundary.
    draining: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes pool workers when the queue grows or shutdown begins.
    work_cv: Condvar,
    /// Wakes `wait()`ers when any job reaches a terminal state (and
    /// `drain()`ers when a running job parks).
    done_cv: Condvar,
    spool: PathBuf,
    slice: Option<Duration>,
    max_queue: usize,
    max_job_paths: usize,
    /// Durable job journal; a failed append degrades crash durability,
    /// never availability (`None` only if the spool became unwritable).
    journal: Mutex<Option<Journal>>,
    /// What the recovery pass at start did (empty summary on a cold
    /// spool).
    recovery: RecoverySummary,
    telemetry: telemetry::Telemetry,
}

impl Shared {
    /// Durably appends one journal record. Failures are typed into
    /// telemetry (`service.journal_failed`) and otherwise ignored: the
    /// job still runs, only crash durability for this transition is lost.
    fn journal_append(&self, record: &JournalRecord) {
        let mut guard = lock(&self.journal);
        if let Some(journal) = guard.as_mut() {
            if let Err(error) = journal.append(record) {
                self.telemetry
                    .counter(telemetry::names::SERVICE_JOURNAL_FAILED, 1);
                self.telemetry
                    .warn(|| format!("journal append failed: {error}"));
            }
        }
    }
}

/// The analysis service. `Send + Sync`: share it behind an `Arc` and
/// submit from any thread.
pub struct AnalysisService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    scheduler: Option<JoinHandle<()>>,
}

impl fmt::Debug for AnalysisService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnalysisService")
            .field("pool", &self.workers.len())
            .field("slice", &self.shared.slice)
            .field("spool", &self.shared.spool)
            .finish()
    }
}

impl AnalysisService {
    /// Starts the worker pool (and the preemption scheduler, when a slice
    /// is configured), after running a crash-recovery pass over the spool
    /// directory: journaled jobs that never finished are re-enqueued
    /// (suspended ones resume from their validated checkpoints), orphaned
    /// spool files are garbage-collected, and the journal is compacted.
    /// Every defect found on the way is a typed entry in
    /// [`AnalysisService::recovery`], never an abort.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the spool directory cannot be created or
    /// the journal cannot be opened for appending.
    pub fn start(config: ServiceConfig) -> io::Result<AnalysisService> {
        std::fs::create_dir_all(&config.spool)?;

        let mut span = config.telemetry.span("recovery", None);
        let replayed = journal::replay(&config.spool);
        let mut summary = replayed.summary;
        journal::gc_orphans(&config.spool, &replayed.live, &mut summary);
        if let Err(error) = journal::compact(&config.spool, &replayed.live) {
            summary.errors.push(journal::RecoveryError::Io {
                path: config.spool.display().to_string(),
                message: error.to_string(),
            });
        }
        let journal = Journal::open(&config.spool)?;
        span.field("requeued", summary.requeued);
        span.field("resumed", summary.resumed);
        span.field("discarded", summary.discarded);
        span.field("orphans_removed", summary.orphans_removed);
        span.field("errors", summary.errors.len() as u64);
        span.finish();
        config.telemetry.counter(
            telemetry::names::SERVICE_RECOVERY_REQUEUED,
            summary.requeued,
        );
        config
            .telemetry
            .counter(telemetry::names::SERVICE_RECOVERY_RESUMED, summary.resumed);
        config.telemetry.counter(
            telemetry::names::SERVICE_RECOVERY_ORPHANS_REMOVED,
            summary.orphans_removed,
        );
        config.telemetry.counter(
            telemetry::names::SERVICE_RECOVERY_ERRORS,
            summary.errors.len() as u64,
        );
        if summary.requeued + summary.resumed + summary.orphans_removed > 0
            || !summary.errors.is_empty()
        {
            config.telemetry.info(|| summary.render());
        }

        let now = Instant::now();
        let mut jobs = BTreeMap::new();
        let mut queue = VecDeque::new();
        for recovered in &replayed.live {
            jobs.insert(
                recovered.id,
                Job {
                    spec: recovered.spec.clone(),
                    progress: None,
                    state: JobState::Queued,
                    yield_hook: YieldToken::new(),
                    cancel: CancelToken::new(),
                    resume_from: recovered.resume_from.clone(),
                    deadline_at: None,
                    submitted: now,
                    first_started: None,
                    slice_start: None,
                    suspendable: false,
                    parked: false,
                    suspensions: 0,
                    outcome: None,
                    waves_done: 0,
                    frontier: 0,
                    steps_done: 0,
                },
            );
            queue.push_back(recovered.id);
        }

        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue,
                jobs,
                next_id: replayed.next_id,
                shutdown: false,
                draining: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            spool: config.spool,
            slice: config.slice,
            max_queue: config.max_queue,
            max_job_paths: config.max_job_paths,
            journal: Mutex::new(Some(journal)),
            recovery: summary,
            telemetry: config.telemetry,
        });
        let pool = config.pool.max(1);
        let workers = (0..pool)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("analysis-worker-{index}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let scheduler = match config.slice {
            Some(slice) => {
                let shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("analysis-scheduler".to_string())
                        .spawn(move || scheduler_loop(&shared, slice))?,
                )
            }
            None => None,
        };
        Ok(AnalysisService {
            shared,
            workers,
            scheduler,
        })
    }

    /// Enqueues a job; returns its id immediately, or a typed
    /// [`RejectReason`] when admission control sheds it (queue at depth
    /// cap, path budget over the per-job cap, or the service draining).
    ///
    /// # Errors
    ///
    /// Returns the [`RejectReason`]; the job was not admitted and left no
    /// trace.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, RejectReason> {
        self.submit_inner(spec, None)
    }

    /// Enqueues a job with a progress callback: every JSONL telemetry
    /// record the exploration emits is forwarded as it happens.
    ///
    /// # Errors
    ///
    /// Returns the [`RejectReason`] when admission control sheds the job.
    pub fn submit_with_progress(
        &self,
        spec: JobSpec,
        progress: ProgressFn,
    ) -> Result<u64, RejectReason> {
        self.submit_inner(spec, Some(progress))
    }

    fn submit_inner(
        &self,
        spec: JobSpec,
        progress: Option<ProgressFn>,
    ) -> Result<u64, RejectReason> {
        let mut state = lock(&self.shared.state);
        if let Some(reason) = self.admission_check(&state, &spec) {
            drop(state);
            self.shared
                .telemetry
                .counter(telemetry::names::SERVICE_REJECTED, 1);
            match reason {
                RejectReason::QueueFull { .. } => self
                    .shared
                    .telemetry
                    .counter(telemetry::names::SERVICE_REJECTED_QUEUE_FULL, 1),
                RejectReason::PathBudget { .. } => self
                    .shared
                    .telemetry
                    .counter(telemetry::names::SERVICE_REJECTED_PATH_BUDGET, 1),
                RejectReason::Draining => self
                    .shared
                    .telemetry
                    .counter(telemetry::names::SERVICE_REJECTED_DRAINING, 1),
            }
            return Err(reason);
        }
        let id = state.next_id;
        state.next_id += 1;
        // WAL discipline: the admission is durable before the job becomes
        // visible to workers (the journal mutex is separate, but we hold
        // the state lock, so no worker can observe the job early).
        self.shared.journal_append(&JournalRecord::Submitted {
            id,
            spec: spec.clone(),
        });
        state.jobs.insert(
            id,
            Job {
                spec,
                progress,
                state: JobState::Queued,
                yield_hook: YieldToken::new(),
                cancel: CancelToken::new(),
                resume_from: None,
                deadline_at: None,
                submitted: Instant::now(),
                first_started: None,
                slice_start: None,
                suspendable: false,
                parked: false,
                suspensions: 0,
                outcome: None,
                waves_done: 0,
                frontier: 0,
                steps_done: 0,
            },
        );
        state.queue.push_back(id);
        drop(state);
        self.shared.work_cv.notify_one();
        Ok(id)
    }

    /// Admission decision for one spec against the current state.
    fn admission_check(&self, state: &State, spec: &JobSpec) -> Option<RejectReason> {
        if state.draining || state.shutdown {
            return Some(RejectReason::Draining);
        }
        if self.shared.max_job_paths > 0 && spec.max_paths > self.shared.max_job_paths {
            return Some(RejectReason::PathBudget {
                requested: spec.max_paths,
                cap: self.shared.max_job_paths,
            });
        }
        if self.shared.max_queue > 0 && state.queue.len() >= self.shared.max_queue {
            return Some(RejectReason::QueueFull {
                depth: state.queue.len(),
                limit: self.shared.max_queue,
            });
        }
        None
    }

    /// Current lifecycle state, or `None` for an unknown id.
    pub fn status(&self, id: u64) -> Option<JobState> {
        lock(&self.shared.state).jobs.get(&id).map(|job| job.state)
    }

    /// Requests cooperative suspension: the job parks into a checkpoint at
    /// its next wave boundary and re-enters the queue tail. Works on a
    /// queued job too (it then suspends at wave 0 of its first slice —
    /// a full migration through the checkpoint format). Returns `false`
    /// for unknown or already-terminal jobs.
    pub fn suspend(&self, id: u64) -> bool {
        let state = lock(&self.shared.state);
        match state.jobs.get(&id) {
            Some(job) if !matches!(job.state, JobState::Done | JobState::Failed) => {
                job.yield_hook.request();
                true
            }
            _ => false,
        }
    }

    /// Cancels a job: a running exploration is cut at the next boundary
    /// (terminal, with a `Cancelled` degradation in its report). The
    /// cancellation is journaled immediately, so a crash between the
    /// request and the cut does not resurrect abandoned work on restart.
    pub fn cancel(&self, id: u64) -> bool {
        let state = lock(&self.shared.state);
        match state.jobs.get(&id) {
            Some(job) if !matches!(job.state, JobState::Done | JobState::Failed) => {
                job.cancel.cancel();
                drop(state);
                self.shared
                    .telemetry
                    .counter(telemetry::names::SERVICE_CANCELLED, 1);
                self.shared.journal_append(&JournalRecord::Cancelled { id });
                true
            }
            _ => false,
        }
    }

    /// Parks a job out of the pool: a running job suspends into its spool
    /// checkpoint at the next wave boundary and stays `Suspended` (it is
    /// *not* requeued); a queued job is pulled out of the queue
    /// immediately. Parked work is journaled and picked back up by the
    /// recovery pass of the next service start on this spool. This is the
    /// disconnect policy that keeps the pool from finishing work nobody
    /// will read, without discarding it either. Returns `false` for
    /// unknown or already-terminal jobs.
    pub fn park(&self, id: u64) -> bool {
        let mut state = lock(&self.shared.state);
        let Some(job) = state.jobs.get_mut(&id) else {
            return false;
        };
        match job.state {
            JobState::Done | JobState::Failed => false,
            JobState::Queued => {
                job.parked = true;
                job.state = JobState::Suspended;
                state.queue.retain(|&queued| queued != id);
                drop(state);
                self.shared
                    .telemetry
                    .counter(telemetry::names::SERVICE_PARKED, 1);
                true
            }
            JobState::Running | JobState::Suspended => {
                job.parked = true;
                job.yield_hook.request();
                drop(state);
                self.shared
                    .telemetry
                    .counter(telemetry::names::SERVICE_PARKED, 1);
                true
            }
        }
    }

    /// Graceful drain for shutdown: stop admitting (submissions now
    /// reject with [`RejectReason::Draining`]), stop dequeuing, and ask
    /// every running job to park at its next wave boundary. Blocks until
    /// no job is `Running` or the timeout elapses; returns `true` when
    /// the pool drained completely. Queued and parked jobs stay durably
    /// journaled for the next start to recover.
    pub fn drain(&self, timeout: Duration) -> bool {
        {
            let mut state = lock(&self.shared.state);
            state.draining = true;
        }
        self.shared.work_cv.notify_all();
        let deadline = Instant::now() + timeout;
        let mut state = lock(&self.shared.state);
        loop {
            // Re-arm each pass: a job may become suspendable only after
            // its slice has built the analyzer.
            let mut running = 0usize;
            for job in state.jobs.values_mut() {
                if job.state == JobState::Running {
                    running += 1;
                    job.parked = true;
                    job.yield_hook.request();
                }
            }
            if running == 0 {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let wait = deadline
                .saturating_duration_since(now)
                .min(Duration::from_millis(25));
            let (next, _) = self
                .shared
                .done_cv
                .wait_timeout(state, wait)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            state = next;
        }
    }

    /// What the recovery pass at [`AnalysisService::start`] found and did.
    pub fn recovery(&self) -> &RecoverySummary {
        &self.shared.recovery
    }

    /// Non-blocking outcome lookup: `Some` only once the job is terminal.
    pub fn outcome(&self, id: u64) -> Option<JobOutcome> {
        lock(&self.shared.state)
            .jobs
            .get(&id)
            .and_then(|job| job.outcome.clone())
    }

    /// A point-in-time introspection snapshot: queue depth, pool
    /// utilization, drain flag, and one row per known job (id order).
    /// This is what `ClientFrame::Stats` answers with.
    pub fn stats(&self) -> ServiceStats {
        let state = lock(&self.shared.state);
        let busy = state
            .jobs
            .values()
            .filter(|job| job.state == JobState::Running)
            .count() as u64;
        ServiceStats {
            queue_depth: state.queue.len() as u64,
            pool: self.workers.len() as u64,
            busy,
            draining: state.draining,
            jobs: state
                .jobs
                .iter()
                .map(|(&id, job)| JobSnapshot {
                    id,
                    state: job.state.to_string(),
                    suspensions: u64::from(job.suspensions),
                    waves: job.waves_done,
                    frontier: job.frontier,
                    steps: job.steps_done,
                })
                .collect(),
        }
    }

    /// Ids of every job the service knows about, with their states —
    /// diagnostics for the daemon's recovery reporting.
    pub fn jobs(&self) -> Vec<(u64, JobState)> {
        lock(&self.shared.state)
            .jobs
            .iter()
            .map(|(&id, job)| (id, job.state))
            .collect()
    }

    /// Blocks until the job reaches a terminal state; returns its outcome
    /// (`None` for an unknown id).
    pub fn wait(&self, id: u64) -> Option<JobOutcome> {
        let mut state = lock(&self.shared.state);
        loop {
            match state.jobs.get(&id) {
                None => return None,
                Some(job) => {
                    if let Some(outcome) = &job.outcome {
                        return Some(outcome.clone());
                    }
                }
            }
            state = self
                .shared
                .done_cv
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Stops accepting work and joins the pool. Running slices finish (or
    /// suspend, under a slice); queued jobs stay queued forever — callers
    /// that need drain semantics should `wait()` first.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut state = lock(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for AnalysisService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Arms the yield token of every over-slice running job whenever other
/// jobs are waiting for a worker. Sleeps a fraction of the slice so the
/// overshoot past the nominal slice stays small.
///
/// A mid-wave suspension reruns the interrupted wave on resume (the PR 3
/// snapshot parks whole waves), so a job whose single wave outlasts the
/// slice would otherwise be preempted forever without progressing. Each
/// suspension therefore doubles that job's effective slice: total wasted
/// re-execution stays within a constant factor of useful work, and every
/// job eventually gets a slice long enough to clear its longest wave.
fn scheduler_loop(shared: &Shared, slice: Duration) {
    let tick = (slice / 4)
        .min(Duration::from_millis(50))
        .max(Duration::from_millis(1));
    loop {
        std::thread::sleep(tick);
        let state = lock(&shared.state);
        if state.shutdown {
            return;
        }
        if state.queue.is_empty() {
            continue;
        }
        let now = Instant::now();
        for job in state.jobs.values() {
            if job.state != JobState::Running || !job.suspendable {
                continue;
            }
            let effective = slice.saturating_mul(1 << job.suspensions.min(16));
            if let Some(started) = job.slice_start {
                if now.duration_since(started) >= effective {
                    if std::env::var_os("SERVICE_DEBUG").is_some() && !job.yield_hook.is_requested()
                    {
                        eprintln!(
                            "[svc] arm yield (slice {:?} elapsed {:?})",
                            effective,
                            now.duration_since(started)
                        );
                    }
                    job.yield_hook.request();
                }
            }
        }
    }
}

/// What a worker copies out of the scheduler lock to run one slice.
struct SliceWork {
    id: u64,
    spec: JobSpec,
    progress: Option<ProgressFn>,
    yield_hook: YieldToken,
    cancel: CancelToken,
    resume_from: Option<PathBuf>,
    deadline_ms: Option<u64>,
}

fn worker_loop(shared: &Shared) {
    loop {
        let work = {
            let mut state = lock(&shared.state);
            loop {
                if state.shutdown {
                    return;
                }
                if !state.draining {
                    if let Some(id) = state.queue.pop_front() {
                        if let Some(work) = begin_slice(&mut state, id) {
                            break work;
                        }
                        continue; // cancelled-while-queued edge: next item
                    }
                }
                state = shared
                    .work_cv
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        shared.journal_append(&JournalRecord::Started { id: work.id });
        run_slice(shared, work);
    }
}

/// Transitions a dequeued job to `Running` and snapshots what the slice
/// needs. The per-job deadline is pinned at first start; later slices get
/// only the remaining budget.
fn begin_slice(state: &mut State, id: u64) -> Option<SliceWork> {
    let job = state.jobs.get_mut(&id)?;
    if matches!(job.state, JobState::Done | JobState::Failed) {
        return None;
    }
    let now = Instant::now();
    if job.first_started.is_none() {
        job.first_started = Some(now);
        job.deadline_at = job
            .spec
            .deadline_ms
            .map(|ms| now + Duration::from_millis(ms));
    }
    job.state = JobState::Running;
    job.slice_start = Some(now);
    if std::env::var_os("SERVICE_DEBUG").is_some() {
        eprintln!(
            "[svc] begin job {id} resume={:?} suspensions={}",
            job.resume_from, job.suspensions
        );
    }
    let deadline_ms = job
        .deadline_at
        .map(|at| u64::try_from(at.saturating_duration_since(now).as_millis()).unwrap_or(u64::MAX));
    Some(SliceWork {
        id,
        spec: job.spec.clone(),
        progress: job.progress.clone(),
        yield_hook: job.yield_hook.clone(),
        cancel: job.cancel.clone(),
        resume_from: job.resume_from.take(),
        deadline_ms,
    })
}

/// Forwards complete trace lines to the job's progress callback. Partial
/// lines are buffered; the telemetry layer writes record-at-a-time so a
/// flush between records never splits one.
struct ProgressWriter {
    job: u64,
    buffer: Vec<u8>,
    progress: ProgressFn,
}

impl io::Write for ProgressWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buffer.extend_from_slice(data);
        while let Some(end) = self.buffer.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buffer.drain(..=end).collect();
            let text = String::from_utf8_lossy(&line[..line.len() - 1]);
            (self.progress)(self.job, &text);
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn run_slice(shared: &Shared, work: SliceWork) {
    let telemetry = match &work.progress {
        Some(progress) => {
            let writer = ProgressWriter {
                job: work.id,
                buffer: Vec::new(),
                progress: Arc::clone(progress),
            };
            telemetry::TelemetryConfig::default()
                .build_streaming(Box::new(writer))
                .unwrap_or_else(|_| telemetry::Telemetry::disabled())
        }
        None => telemetry::Telemetry::disabled(),
    };

    // A suspendable slice snapshots into the spool; multi-target jobs run
    // to completion (a checkpoint snapshots exactly one exploration), so
    // they get a detached yield token the scheduler never arms.
    let spool_path = shared.spool.join(format!("job-{}.ckpt", work.id));
    let base = AnalyzerOptions {
        max_paths: work.spec.max_paths,
        loop_bound: work.spec.loop_bound,
        workers: work.spec.workers,
        deadline_ms: work.deadline_ms,
        cancel: work.cancel.clone(),
        telemetry: telemetry.clone(),
        ..AnalyzerOptions::default()
    };
    let suspendable_options = AnalyzerOptions {
        yield_hook: work.yield_hook.clone(),
        checkpoint: Some(spool_path.clone()),
        resume: work.resume_from.clone(),
        ..base.clone()
    };

    let built = match &work.spec.config_xml {
        Some(xml) => {
            Analyzer::with_config(&work.spec.source, &work.spec.edl, xml, suspendable_options)
        }
        None => Analyzer::from_sources(&work.spec.source, &work.spec.edl, suspendable_options),
    };
    let analyzer = match built {
        Ok(analyzer) => analyzer,
        Err(error) => {
            finish_job(shared, work.id, Vec::new(), Some(error.to_string()));
            return;
        }
    };
    let targets = match &work.spec.function {
        Some(name) => vec![name.clone()],
        None => analyzer.targets(),
    };
    if targets.is_empty() {
        finish_job(
            shared,
            work.id,
            Vec::new(),
            Some("no public ECALLs to analyze (and no function given)".to_string()),
        );
        return;
    }

    let single_target = targets.len() == 1;
    let analyzer = if single_target {
        analyzer
    } else {
        // Rebuild without suspension plumbing; mark the job unsuspendable
        // so the preemption scheduler leaves it alone.
        let detached = AnalyzerOptions {
            yield_hook: YieldToken::new(),
            checkpoint: None,
            resume: None,
            ..base
        };
        let rebuilt = match &work.spec.config_xml {
            Some(xml) => Analyzer::with_config(&work.spec.source, &work.spec.edl, xml, detached),
            None => Analyzer::from_sources(&work.spec.source, &work.spec.edl, detached),
        };
        match rebuilt {
            Ok(analyzer) => analyzer,
            Err(error) => {
                finish_job(shared, work.id, Vec::new(), Some(error.to_string()));
                return;
            }
        }
    };
    {
        let mut state = lock(&shared.state);
        if let Some(job) = state.jobs.get_mut(&work.id) {
            job.suspendable = single_target;
        }
    }

    let mut reports = Vec::with_capacity(targets.len());
    for target in &targets {
        match analyzer.analyze(target) {
            Ok(report) => {
                let suspended = report
                    .degradations
                    .iter()
                    .any(|d| matches!(d, Degradation::Suspended { .. }));
                if suspended && single_target {
                    suspend_job(shared, work.id, &report, &spool_path);
                    return;
                }
                reports.push(report);
            }
            Err(error) => {
                finish_job(shared, work.id, Vec::new(), Some(error.to_string()));
                return;
            }
        }
    }
    finish_job(shared, work.id, reports, None);
}

/// Parks a suspended job: records the snapshot to resume from, clears the
/// (consumed) yield request, and requeues at the tail — unless the job
/// was parked (disconnect policy or drain), in which case it stays
/// `Suspended` in the spool for a later recovery pass. Either way the
/// suspension is journaled with the snapshot's fingerprint so recovery
/// can detect a stale file.
fn suspend_job(shared: &Shared, id: u64, report: &Report, spool_path: &std::path::Path) {
    let mut state = lock(&shared.state);
    let Some(job) = state.jobs.get_mut(&id) else {
        return;
    };
    let ckpt = report
        .checkpoint
        .as_ref()
        .map(PathBuf::from)
        .unwrap_or_else(|| spool_path.to_path_buf());
    job.resume_from = Some(ckpt.clone());
    job.state = JobState::Suspended;
    job.slice_start = None;
    job.suspensions += 1;
    if let Some(Degradation::Suspended { wave, dropped }) = report
        .degradations
        .iter()
        .rev()
        .find(|d| matches!(d, Degradation::Suspended { .. }))
    {
        job.waves_done = *wave as u64;
        job.frontier = *dropped as u64;
    }
    job.steps_done = report.profile.total_steps();
    if std::env::var_os("SERVICE_DEBUG").is_some() {
        eprintln!(
            "[svc] suspend job {id} -> {:?} (#{} parked={})",
            job.resume_from, job.suspensions, job.parked
        );
    }
    job.yield_hook.clear();
    let parked = job.parked || state.draining;
    if !parked {
        state.queue.push_back(id);
    }
    drop(state);
    shared
        .telemetry
        .counter(telemetry::names::SERVICE_SUSPENDED, 1);
    let fingerprint = symexec::Snapshot::peek_fingerprint(&ckpt).unwrap_or(0);
    shared.journal_append(&JournalRecord::Suspended {
        id,
        ckpt: ckpt.display().to_string(),
        fingerprint,
    });
    if parked {
        // Wake drain()ers polling for the pool to empty.
        shared.done_cv.notify_all();
    } else {
        shared.work_cv.notify_one();
    }
}

fn finish_job(shared: &Shared, id: u64, reports: Vec<Report>, error: Option<String>) {
    // Journal the terminal state *before* removing the spool checkpoint:
    // a crash in between leaves only an orphan file for the next
    // recovery's GC, never a lost outcome.
    let exit_for_journal = match &error {
        Some(_) => 2u64,
        None => {
            let secure = reports.iter().all(Report::is_secure);
            let degraded = reports.iter().any(Report::is_degraded);
            if !secure {
                1
            } else if degraded {
                3
            } else {
                0
            }
        }
    };
    match &error {
        Some(message) => shared.journal_append(&JournalRecord::Failed {
            id,
            error: message.clone(),
        }),
        None => shared.journal_append(&JournalRecord::Done {
            id,
            exit: exit_for_journal,
        }),
    }
    let spool_path = shared.spool.join(format!("job-{id}.ckpt"));
    let _ = std::fs::remove_file(spool_path);
    let mut state = lock(&shared.state);
    let Some(job) = state.jobs.get_mut(&id) else {
        return;
    };
    let now = Instant::now();
    let exit = u8::try_from(exit_for_journal).unwrap_or(2);
    if std::env::var_os("SERVICE_DEBUG").is_some() {
        eprintln!("[svc] finish job {id} exit={exit} err={:?}", error);
    }
    job.state = if error.is_some() {
        JobState::Failed
    } else {
        JobState::Done
    };
    job.slice_start = None;
    job.frontier = 0;
    let final_steps: u64 = reports.iter().map(|r| r.profile.total_steps()).sum();
    if final_steps > 0 {
        job.steps_done = final_steps;
    }
    job.outcome = Some(JobOutcome {
        reports,
        exit,
        error,
        suspensions: job.suspensions,
        queued_for: job
            .first_started
            .unwrap_or(now)
            .duration_since(job.submitted),
        total: now.duration_since(job.submitted),
    });
    drop(state);
    shared.done_cv.notify_all();
}
