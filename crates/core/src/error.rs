//! Analyzer error type.

use std::fmt;

/// Errors raised while configuring or running the analyzer.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The enclave source failed to parse or type-check.
    Source(minic::Error),
    /// The EDL interface failed to parse.
    Edl(edl::EdlError),
    /// The XML configuration failed to parse.
    Config(edl::ConfigError),
    /// The requested function is not a declared ECALL (or config target).
    UnknownTarget(String),
    /// The symbolic engine rejected the setup.
    Engine(symexec::EngineError),
    /// A resume snapshot could not be loaded (missing, truncated, corrupt,
    /// or written for a different analysis).
    Checkpoint(symexec::CheckpointError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Source(e) => write!(f, "source: {e}"),
            Error::Edl(e) => write!(f, "interface: {e}"),
            Error::Config(e) => write!(f, "configuration: {e}"),
            Error::UnknownTarget(name) => {
                write!(f, "`{name}` is not a declared ECALL target")
            }
            Error::Engine(e) => write!(f, "engine: {e}"),
            Error::Checkpoint(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<minic::Error> for Error {
    fn from(e: minic::Error) -> Self {
        Error::Source(e)
    }
}

impl From<edl::EdlError> for Error {
    fn from(e: edl::EdlError) -> Self {
        Error::Edl(e)
    }
}

impl From<edl::ConfigError> for Error {
    fn from(e: edl::ConfigError) -> Self {
        Error::Config(e)
    }
}

impl From<symexec::EngineError> for Error {
    fn from(e: symexec::EngineError) -> Self {
        Error::Engine(e)
    }
}

impl From<symexec::CheckpointError> for Error {
    fn from(e: symexec::CheckpointError) -> Self {
        Error::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(Error::UnknownTarget("f".into())
            .to_string()
            .contains("not a declared ECALL"));
    }
}
