//! PrivacyScope — static detection of nonreversibility violations in
//! TEE-protected applications.
//!
//! This is the paper's primary contribution (ICDCS 2020): a static analyzer
//! that decides whether code running inside an SGX enclave can leak its
//! secret inputs *deterministically* — either **explicitly** (an observable
//! output carries a single-source secret, so the attacker inverts the
//! computation) or **implicitly** (the program branches on a secret and the
//! branches produce different observable values).
//!
//! The analyzer drives the `symexec` engine (region-based symbolic
//! execution with taint) over `minic` ASTs; the policy it enforces is the
//! *nonreversibility* property of §IV, strictly weaker than classical
//! noninterference — ML code whose model legitimately depends on the
//! training data passes, while reversible flows fail.
//!
//! Entry points:
//!
//! * [`Analyzer`] — configure once (EDL file, XML config, engine options),
//!   then [`Analyzer::analyze`] each ECALL; returns a [`report::Report`]
//!   in the style of the paper's Box 1.
//! * [`baseline`] — the path-insensitive, DFA-style taint baseline the
//!   paper compares against in §II-B (finds explicit leaks only).
//! * [`nonrev`] — the nonreversibility property itself, as reusable
//!   verdict helpers shared by both analyzers.
//!
//! # Examples
//!
//! ```
//! use privacyscope::{Analyzer, AnalyzerOptions};
//!
//! let source = r#"
//!     int enclave_process_data(char *secrets, char *output) {
//!         int temporary = secrets[0] + 100;
//!         output[0] = temporary + 1;
//!         if (secrets[1] == 0) return 0; else return 1;
//!     }
//! "#;
//! let edl_text = r#"
//!     enclave { trusted {
//!         public int enclave_process_data([in] char *secrets, [out] char *output);
//!     }; };
//! "#;
//! let analyzer = Analyzer::from_sources(source, edl_text, AnalyzerOptions::default())?;
//! let report = analyzer.analyze("enclave_process_data")?;
//! assert_eq!(report.explicit_findings().count(), 1); // output[0] ← secrets[0]
//! assert_eq!(report.implicit_findings().count(), 1); // return ← secrets[1]
//! # Ok::<(), privacyscope::Error>(())
//! ```

pub mod analyzer;
pub mod baseline;
pub mod error;
pub mod invert;
pub mod journal;
pub mod nonrev;
pub mod oracle;
pub mod preflight;
pub mod protocol;
pub mod report;
pub mod service;
pub mod shrink;

pub use analyzer::{Analyzer, AnalyzerOptions};
pub use error::Error;
pub use nonrev::Property;
pub use report::{Finding, FindingKind, Report};
pub use service::{
    AnalysisService, JobOutcome, JobSnapshot, JobSpec, JobState, ServiceConfig, ServiceStats,
};
pub use symexec::profile::SourceProfile;
pub use symexec::FeasibilityMode;
