//! Deterministic reproducer shrinking for oracle disagreements.
//!
//! When the differential oracle (see [`crate::oracle`]) finds a module on
//! which the analyzer disagrees with ground truth or concrete execution,
//! the full generated module is a poor bug report: most of its statements
//! (pad loops, helper chains, benign observables) are noise. [`shrink`]
//! minimizes it with a greedy delta-debugging fixpoint:
//!
//! 1. try deleting each non-entry function *definition* (unused helpers
//!    disappear once their call sites are gone);
//! 2. try deleting each statement, pre-order through nested blocks and
//!    loop bodies;
//! 3. repeat until no single deletion is accepted.
//!
//! A candidate is accepted only if it still parses *and* still reproduces
//! the exact disagreement — class-specifically: a missed leak must still
//! be absent from a non-degraded report (and still concretely confirmed
//! when the original was); a false alarm must still be reported and still
//! concretely refuted. The search is purely syntactic and visits
//! candidates in a fixed order, so for a fixed module and disagreement
//! the result is deterministic; a global candidate budget bounds run
//! time.

use minic::ast::{Item, Stmt, StmtKind, TranslationUnit};
use mlcorpus::synth::SynthModule;

use crate::oracle::{
    concrete_dependence, finding_keys, invoke_analyzer, Disagreement, DisagreementClass, Evidence,
    OracleConfig,
};

/// Hard ceiling on candidate evaluations per shrink (each candidate costs
/// one analyzer run and up to `2 * vectors` simulator runs).
const CANDIDATE_BUDGET: usize = 400;

/// The result of shrinking one disagreeing module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrinkOutcome {
    /// The minimized source (the original when nothing could be removed).
    pub source: String,
    /// LoC of the minimized source.
    pub loc: usize,
    /// LoC of the original module.
    pub original_loc: usize,
    /// Fixpoint rounds executed.
    pub rounds: usize,
    /// Candidate sources evaluated.
    pub candidates: usize,
}

/// Whether `source` still exhibits `target` under `config`.
///
/// This is the shrinker's acceptance predicate, public so property tests
/// can assert that a minimized reproducer still reproduces.
#[must_use]
pub fn reproduces(
    source: &str,
    module: &SynthModule,
    target: &Disagreement,
    config: &OracleConfig,
) -> bool {
    if minic::parse(source).is_err() {
        return false;
    }
    let report = match invoke_analyzer(source, &module.edl, module.entry, config) {
        Ok(report) => report,
        Err(_) => return false,
    };
    let key = (
        target.explicit,
        target.channel.clone(),
        target.secret.clone(),
    );
    let reported = finding_keys(&report).contains(&key);
    match target.class {
        DisagreementClass::MissedLeak => {
            if report.is_degraded() || reported {
                return false;
            }
            // A concretely confirmed leak must stay concretely confirmed,
            // otherwise deletion could "fix" the bug instead of shrinking it.
            if target.evidence == Evidence::Confirmed {
                matches!(
                    concrete_dependence(
                        source,
                        &module.edl,
                        module.entry,
                        &target.channel,
                        &target.secret,
                        config,
                        module.seed,
                    ),
                    Ok(true)
                )
            } else {
                true
            }
        }
        DisagreementClass::FalseAlarm => {
            reported
                && matches!(
                    concrete_dependence(
                        source,
                        &module.edl,
                        module.entry,
                        &target.channel,
                        &target.secret,
                        config,
                        module.seed,
                    ),
                    Ok(false)
                )
        }
    }
}

/// Removes the `n`-th statement in deterministic pre-order (every vector
/// element gets an index before its nested children). Returns `true` when
/// a statement was removed; `n` counts down across the traversal.
fn remove_nth_stmt(stmts: &mut Vec<Stmt>, n: &mut isize) -> bool {
    let mut i = 0;
    while i < stmts.len() {
        if *n == 0 {
            stmts.remove(i);
            return true;
        }
        *n -= 1;
        if remove_in_children(&mut stmts[i], n) {
            return true;
        }
        i += 1;
    }
    false
}

fn remove_in_children(stmt: &mut Stmt, n: &mut isize) -> bool {
    match &mut stmt.kind {
        StmtKind::Block(body) => remove_nth_stmt(body, n),
        StmtKind::If { then_s, else_s, .. } => {
            if remove_in_children(then_s, n) {
                return true;
            }
            else_s.as_mut().is_some_and(|e| remove_in_children(e, n))
        }
        StmtKind::While { body, .. }
        | StmtKind::DoWhile { body, .. }
        | StmtKind::For { body, .. } => remove_in_children(body, n),
        _ => false,
    }
}

/// One greedy pass: returns a smaller accepted unit, or `None` when no
/// single deletion is accepted (or the budget ran out).
fn shrink_pass(
    unit: &TranslationUnit,
    module: &SynthModule,
    target: &Disagreement,
    config: &OracleConfig,
    candidates: &mut usize,
) -> Option<TranslationUnit> {
    // Function definitions first: one accepted deletion removes many
    // lines at once.
    for index in 0..unit.items.len() {
        let is_droppable = match &unit.items[index] {
            Item::Function(f) => f.body.is_some() && f.name != module.entry,
            Item::Global(_) | Item::Struct(_) => false,
        };
        if !is_droppable || *candidates >= CANDIDATE_BUDGET {
            continue;
        }
        let mut candidate = unit.clone();
        candidate.items.remove(index);
        *candidates += 1;
        if reproduces(&minic::pretty::unit(&candidate), module, target, config) {
            return Some(candidate);
        }
    }
    // Then individual statements, pre-order, across every function body.
    let mut stmt_index = 0isize;
    loop {
        if *candidates >= CANDIDATE_BUDGET {
            return None;
        }
        let mut candidate = unit.clone();
        let mut removed = false;
        let mut n = stmt_index;
        for item in &mut candidate.items {
            if let Item::Function(f) = item {
                if let Some(body) = f.body.as_mut() {
                    if remove_nth_stmt(body, &mut n) {
                        removed = true;
                        break;
                    }
                }
            }
        }
        if !removed {
            return None; // Index past the last statement: pass exhausted.
        }
        *candidates += 1;
        if reproduces(&minic::pretty::unit(&candidate), module, target, config) {
            return Some(candidate);
        }
        stmt_index += 1;
    }
}

/// Minimizes `module` while preserving `target`. Never fails: when the
/// original does not reproduce (or nothing can be deleted) the original
/// source comes back unchanged.
#[must_use]
pub fn shrink(module: &SynthModule, target: &Disagreement, config: &OracleConfig) -> ShrinkOutcome {
    let original_loc = minic::count_loc(&module.source);
    let mut outcome = ShrinkOutcome {
        source: module.source.clone(),
        loc: original_loc,
        original_loc,
        rounds: 0,
        candidates: 0,
    };
    let Ok(mut unit) = minic::parse(&module.source) else {
        return outcome;
    };
    if !reproduces(&module.source, module, target, config) {
        return outcome;
    }
    while let Some(smaller) = shrink_pass(&unit, module, target, config, &mut outcome.candidates) {
        unit = smaller;
        outcome.rounds += 1;
        if outcome.candidates >= CANDIDATE_BUDGET {
            break;
        }
    }
    if outcome.rounds > 0 {
        outcome.source = minic::pretty::unit(&unit);
        outcome.loc = minic::count_loc(&outcome.source);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> TranslationUnit {
        minic::parse(src).expect("parses")
    }

    #[test]
    fn remove_nth_walks_preorder_through_nesting() {
        let unit =
            parse("int f() { int a; if (a) { int b; int c; } while (a) { int d; } return a; }");
        let body_len = |u: &TranslationUnit| {
            u.function("f")
                .and_then(|f| f.body.as_ref())
                .map(Vec::len)
                .expect("body")
        };
        // Index 0 removes the first top-level statement.
        let mut u = unit.clone();
        let Some(Item::Function(f)) = u.items.first_mut() else {
            panic!("function item")
        };
        let mut n = 0isize;
        assert!(remove_nth_stmt(f.body.as_mut().expect("body"), &mut n));
        assert_eq!(body_len(&u), 3);
        // Walking past the end reports no removal.
        let mut u = unit.clone();
        let Some(Item::Function(f)) = u.items.first_mut() else {
            panic!("function item")
        };
        let mut n = 100isize;
        assert!(!remove_nth_stmt(f.body.as_mut().expect("body"), &mut n));
        // Every index in range removes exactly one statement somewhere
        // (candidates may no longer pass sema — the acceptance predicate
        // filters those — but each index must map to a deletion).
        // 7 statements total: a, if, b, c, while, d, return.
        let mut total = 0;
        for idx in 0..7 {
            let mut u = unit.clone();
            let Some(Item::Function(f)) = u.items.first_mut() else {
                panic!("function item")
            };
            let mut n = idx;
            let removed = remove_nth_stmt(f.body.as_mut().expect("body"), &mut n);
            assert!(removed, "index {idx} should remove a statement");
            total += 1;
        }
        assert_eq!(total, 7);
        // One past the end: no removal.
        let mut u = unit.clone();
        let Some(Item::Function(f)) = u.items.first_mut() else {
            panic!("function item")
        };
        let mut n = 7isize;
        assert!(!remove_nth_stmt(f.body.as_mut().expect("body"), &mut n));
    }
}
