//! A hand-written parser for the EDL subset the SGX SDK corpus uses.

use std::fmt;

use crate::ast::{Bound, Direction, EdlFile, Param, ParamAttributes, Prototype};

/// An EDL parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdlError {
    message: String,
    position: usize,
}

impl EdlError {
    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Byte offset in the source.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl fmt::Display for EdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EDL error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for EdlError {}

/// Parses an EDL file.
///
/// Supported: the `enclave { trusted { … }; untrusted { … }; };` skeleton,
/// `public` markers, C scalar/pointer parameter types, and the `[in]`,
/// `[out]`, `[in, out]`, `size=`, `count=`, `string` attributes. `include`
/// and `from … import` lines are skipped.
///
/// # Errors
///
/// Returns [`EdlError`] on malformed input.
pub fn parse_edl(source: &str) -> Result<EdlFile, EdlError> {
    let mut p = Parser {
        src: source,
        pos: 0,
    };
    p.file()
}

struct Parser<'s> {
    src: &'s str,
    pos: usize,
}

impl<'s> Parser<'s> {
    fn error(&self, message: impl Into<String>) -> EdlError {
        EdlError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        let bytes = self.src.as_bytes();
        loop {
            while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.src[self.pos..].starts_with("//") {
                while self.pos < bytes.len() && bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else if self.src[self.pos..].starts_with("/*") {
                match self.src[self.pos..].find("*/") {
                    Some(end) => self.pos += end + 2,
                    None => self.pos = bytes.len(),
                }
            } else {
                return;
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), EdlError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{token}`")))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        if rest.starts_with(kw) {
            let after = rest.as_bytes().get(kw.len()).copied();
            if after.is_none_or(|b| !b.is_ascii_alphanumeric() && b != b'_') {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn ident(&mut self) -> Result<String, EdlError> {
        self.skip_ws();
        let bytes = self.src.as_bytes();
        let start = self.pos;
        if start >= bytes.len() || !(bytes[start].is_ascii_alphabetic() || bytes[start] == b'_') {
            return Err(self.error("expected identifier"));
        }
        let mut end = start;
        while end < bytes.len() && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_') {
            end += 1;
        }
        self.pos = end;
        Ok(self.src[start..end].to_string())
    }

    fn skip_line(&mut self) {
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() && bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    fn file(&mut self) -> Result<EdlFile, EdlError> {
        self.expect("enclave")?;
        self.expect("{")?;
        let mut file = EdlFile::default();
        loop {
            self.skip_ws();
            if self.eat("}") {
                let _ = self.eat(";");
                break;
            }
            if self.eat_keyword("include") || self.eat_keyword("from") {
                self.skip_line();
                continue;
            }
            if self.eat_keyword("trusted") {
                self.expect("{")?;
                self.prototypes(&mut file.trusted)?;
                let _ = self.eat(";");
                continue;
            }
            if self.eat_keyword("untrusted") {
                self.expect("{")?;
                self.prototypes(&mut file.untrusted)?;
                let _ = self.eat(";");
                continue;
            }
            return Err(self.error("expected `trusted`, `untrusted`, or `}`"));
        }
        Ok(file)
    }

    fn prototypes(&mut self, out: &mut Vec<Prototype>) -> Result<(), EdlError> {
        loop {
            self.skip_ws();
            if self.eat("}") {
                return Ok(());
            }
            if self.eat_keyword("include") {
                self.skip_line();
                continue;
            }
            out.push(self.prototype()?);
        }
    }

    fn prototype(&mut self) -> Result<Prototype, EdlError> {
        let public = self.eat_keyword("public");
        let return_type = self.c_type()?;
        let name = self.ident()?;
        self.expect("(")?;
        let mut params = Vec::new();
        self.skip_ws();
        if !self.eat(")") {
            if self.eat_keyword("void") {
                self.expect(")")?;
            } else {
                loop {
                    params.push(self.param()?);
                    self.skip_ws();
                    if self.eat(",") {
                        continue;
                    }
                    self.expect(")")?;
                    break;
                }
            }
        }
        self.expect(";")?;
        Ok(Prototype {
            name,
            return_type,
            public,
            params,
        })
    }

    fn param(&mut self) -> Result<Param, EdlError> {
        let attributes = if self.eat("[") {
            self.attributes()?
        } else {
            ParamAttributes::default()
        };
        let mut c_type = self.c_type()?;
        let name = self.ident()?;
        // `char buf[16]`-style suffixes fold into the type
        self.skip_ws();
        while self.eat("[") {
            let mut len = String::new();
            self.skip_ws();
            while let Some(c) = self.src[self.pos..].chars().next() {
                if c == ']' {
                    break;
                }
                len.push(c);
                self.pos += c.len_utf8();
            }
            self.expect("]")?;
            c_type = format!("{c_type}[{}]", len.trim());
        }
        Ok(Param {
            name,
            c_type,
            attributes,
        })
    }

    fn attributes(&mut self) -> Result<ParamAttributes, EdlError> {
        let mut attrs = ParamAttributes::default();
        loop {
            self.skip_ws();
            if self.eat("]") {
                return Ok(attrs);
            }
            let word = self.ident()?;
            match word.as_str() {
                "in" => {
                    attrs.direction = Some(match attrs.direction {
                        Some(Direction::Out) | Some(Direction::InOut) => Direction::InOut,
                        _ => Direction::In,
                    });
                }
                "out" => {
                    attrs.direction = Some(match attrs.direction {
                        Some(Direction::In) | Some(Direction::InOut) => Direction::InOut,
                        _ => Direction::Out,
                    });
                }
                "string" => attrs.string = true,
                "user_check" => {}
                "size" | "count" => {
                    self.expect("=")?;
                    let bound = self.bound()?;
                    if word == "size" {
                        attrs.size = Some(bound);
                    } else {
                        attrs.count = Some(bound);
                    }
                }
                other => {
                    return Err(self.error(format!("unknown attribute `{other}`")));
                }
            }
            self.skip_ws();
            let _ = self.eat(",");
        }
    }

    fn bound(&mut self) -> Result<Bound, EdlError> {
        self.skip_ws();
        let bytes = self.src.as_bytes();
        if self.pos < bytes.len() && bytes[self.pos].is_ascii_digit() {
            let start = self.pos;
            while self.pos < bytes.len() && bytes[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
            let text = &self.src[start..self.pos];
            return text
                .parse::<u64>()
                .map(Bound::Const)
                .map_err(|_| self.error("bound out of range"));
        }
        Ok(Bound::Param(self.ident()?))
    }

    fn c_type(&mut self) -> Result<String, EdlError> {
        self.skip_ws();
        let mut parts = Vec::new();
        loop {
            let before = self.pos;
            if self.eat_keyword("const")
                || self.eat_keyword("unsigned")
                || self.eat_keyword("signed")
                || self.eat_keyword("struct")
            {
                parts.push(self.src[before..self.pos].trim().to_string());
                continue;
            }
            break;
        }
        let base = self.ident()?;
        let base_is_long = base == "long";
        parts.push(base);
        // `long long` / `long int` collapse to `long long`-style doubling
        if base_is_long && (self.eat_keyword("long") || self.eat_keyword("int")) {
            parts.push("long".into());
        }
        let mut ty = parts.join(" ");
        loop {
            self.skip_ws();
            if self.eat("*") {
                ty.push('*');
            } else {
                break;
            }
        }
        Ok(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        enclave {
            include "sgx_tseal.h"
            trusted {
                /* process one batch */
                public int enclave_process_data([in, size=len] char *secrets,
                                                [out, count=4] char *output,
                                                int len);
                public void enclave_reset(void);
            };
            untrusted {
                void ocall_log([in, string] char *msg);
                int ocall_send([in] char *buf, int n);
            };
        };
    "#;

    #[test]
    fn parses_sample() {
        let file = parse_edl(SAMPLE).expect("parses");
        assert_eq!(file.trusted.len(), 2);
        assert_eq!(file.untrusted.len(), 2);
    }

    #[test]
    fn attributes_and_bounds() {
        let file = parse_edl(SAMPLE).unwrap();
        let ecall = file.ecall("enclave_process_data").unwrap();
        assert!(ecall.public);
        assert_eq!(ecall.return_type, "int");
        assert_eq!(ecall.params.len(), 3);
        let secrets = &ecall.params[0];
        assert!(secrets.attributes.is_in());
        assert!(!secrets.attributes.is_out());
        assert_eq!(secrets.attributes.size, Some(Bound::Param("len".into())));
        let output = &ecall.params[1];
        assert!(output.attributes.is_out());
        assert_eq!(output.attributes.count, Some(Bound::Const(4)));
        let len = &ecall.params[2];
        assert!(!len.is_pointer());
        assert_eq!(len.c_type, "int");
    }

    #[test]
    fn void_parameter_list() {
        let file = parse_edl(SAMPLE).unwrap();
        let reset = file.ecall("enclave_reset").unwrap();
        assert!(reset.params.is_empty());
    }

    #[test]
    fn in_out_combines() {
        let file = parse_edl("enclave { trusted { public void f([in, out] int *x); }; };").unwrap();
        let param = &file.trusted[0].params[0];
        assert_eq!(param.attributes.direction, Some(Direction::InOut));
        assert!(param.attributes.is_in() && param.attributes.is_out());
    }

    #[test]
    fn string_and_user_check() {
        let file = parse_edl(SAMPLE).unwrap();
        let log = file.ocall("ocall_log").unwrap();
        assert!(log.params[0].attributes.string);
    }

    #[test]
    fn unknown_attribute_rejected() {
        let err =
            parse_edl("enclave { trusted { public void f([inout] int *x); }; };").unwrap_err();
        assert!(err.to_string().contains("unknown attribute"));
    }

    #[test]
    fn missing_semicolon_rejected() {
        assert!(parse_edl("enclave { trusted { public void f() }; };").is_err());
    }

    #[test]
    fn pointer_types_render_with_stars() {
        let file =
            parse_edl("enclave { trusted { public void f([in] const unsigned char **p); }; };")
                .unwrap();
        assert_eq!(file.trusted[0].params[0].c_type, "const unsigned char**");
    }

    #[test]
    fn ocall_names_as_default_sinks() {
        let file = parse_edl(SAMPLE).unwrap();
        assert_eq!(file.ocall_names(), vec!["ocall_log", "ocall_send"]);
    }

    #[test]
    fn empty_enclave() {
        let file = parse_edl("enclave { };").unwrap();
        assert!(file.trusted.is_empty() && file.untrusted.is_empty());
    }
}
