//! EDL file structure.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A parsed EDL file: the enclave's trusted/untrusted interface.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EdlFile {
    /// ECALL prototypes (host calls into the enclave).
    pub trusted: Vec<Prototype>,
    /// OCALL prototypes (enclave calls out to the host).
    pub untrusted: Vec<Prototype>,
}

impl EdlFile {
    /// Looks up an ECALL by name.
    pub fn ecall(&self, name: &str) -> Option<&Prototype> {
        self.trusted.iter().find(|p| p.name == name)
    }

    /// Looks up an OCALL by name.
    pub fn ocall(&self, name: &str) -> Option<&Prototype> {
        self.untrusted.iter().find(|p| p.name == name)
    }

    /// Names of all OCALLs — the default sink-function set.
    pub fn ocall_names(&self) -> Vec<String> {
        self.untrusted.iter().map(|p| p.name.clone()).collect()
    }
}

/// An ECALL/OCALL prototype.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Prototype {
    /// Function name.
    pub name: String,
    /// Return type, as written (e.g. `int`, `void`).
    pub return_type: String,
    /// Whether declared `public` (directly callable).
    pub public: bool,
    /// Parameters in order.
    pub params: Vec<Param>,
}

/// One parameter of a prototype.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// The C type as written (e.g. `char*`, `double *`).
    pub c_type: String,
    /// Marshalling attributes (empty for scalars).
    pub attributes: ParamAttributes,
}

impl Param {
    /// Whether the type is a pointer.
    pub fn is_pointer(&self) -> bool {
        self.c_type.contains('*')
    }
}

/// Marshalling direction of a pointer parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// `[in]` — marshalled host → enclave (a secret source by default).
    In,
    /// `[out]` — marshalled enclave → host (an observable sink).
    Out,
    /// `[in, out]` — both.
    InOut,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::In => write!(f, "in"),
            Direction::Out => write!(f, "out"),
            Direction::InOut => write!(f, "in, out"),
        }
    }
}

/// The bracketed attribute list of a parameter.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ParamAttributes {
    /// Marshalling direction, if any.
    pub direction: Option<Direction>,
    /// `size=` bound: byte size, either a constant or a parameter name.
    pub size: Option<Bound>,
    /// `count=` bound: element count.
    pub count: Option<Bound>,
    /// `string` attribute (NUL-terminated).
    pub string: bool,
}

impl ParamAttributes {
    /// Whether data flows into the enclave through this parameter.
    pub fn is_in(&self) -> bool {
        matches!(self.direction, Some(Direction::In) | Some(Direction::InOut))
    }

    /// Whether data flows out of the enclave through this parameter.
    pub fn is_out(&self) -> bool {
        matches!(
            self.direction,
            Some(Direction::Out) | Some(Direction::InOut)
        )
    }
}

/// A `size=`/`count=` bound.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// A constant bound, e.g. `size=16`.
    Const(u64),
    /// A bound given by another parameter, e.g. `count=len`.
    Param(String),
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Const(n) => write!(f, "{n}"),
            Bound::Param(name) => write!(f, "{name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_queries() {
        let mut attrs = ParamAttributes::default();
        assert!(!attrs.is_in() && !attrs.is_out());
        attrs.direction = Some(Direction::In);
        assert!(attrs.is_in() && !attrs.is_out());
        attrs.direction = Some(Direction::InOut);
        assert!(attrs.is_in() && attrs.is_out());
    }

    #[test]
    fn pointer_detection() {
        let param = Param {
            name: "buf".into(),
            c_type: "char*".into(),
            attributes: ParamAttributes::default(),
        };
        assert!(param.is_pointer());
        let scalar = Param {
            name: "n".into(),
            c_type: "int".into(),
            attributes: ParamAttributes::default(),
        };
        assert!(!scalar.is_pointer());
    }

    #[test]
    fn lookup_by_name() {
        let file = EdlFile {
            trusted: vec![Prototype {
                name: "f".into(),
                return_type: "int".into(),
                public: true,
                params: vec![],
            }],
            untrusted: vec![Prototype {
                name: "ocall_g".into(),
                return_type: "void".into(),
                public: false,
                params: vec![],
            }],
        };
        assert!(file.ecall("f").is_some());
        assert!(file.ecall("ocall_g").is_none());
        assert_eq!(file.ocall_names(), vec!["ocall_g"]);
    }
}
