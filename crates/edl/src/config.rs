//! The analyzer's XML configuration file (§V-C).
//!
//! Prior to analysis, PrivacyScope processes a user-provided XML file
//! naming the functions to evaluate and any policy overrides. The schema:
//!
//! ```xml
//! <privacyscope>
//!   <target function="enclave_process_data"/>
//!   <secret param="secrets"/>            <!-- override: mark as secret -->
//!   <public param="len"/>                <!-- override: not a secret -->
//!   <sink function="ocall_send"/>        <!-- extra observable sink -->
//!   <decrypt function="ipp_aes_decrypt"/><!-- predefined decrypt list -->
//!   <option name="loop-bound" value="4"/>
//!   <option name="max-paths" value="4096"/>
//! </privacyscope>
//! ```
//!
//! A tiny, dependency-free XML subset parser: elements with attributes,
//! self-closing or with a matching end tag, comments, and no text content.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A configuration-file error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
    position: usize,
}

impl ConfigError {
    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "config error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ConfigError {}

/// The parsed analysis configuration.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Functions to analyze; empty means "every public ECALL in the EDL".
    pub targets: Vec<String>,
    /// Parameter names forced to be secret sources.
    pub secret_params: Vec<String>,
    /// Parameter names forced to be non-secret.
    pub public_params: Vec<String>,
    /// Extra sink functions beyond the EDL's OCALLs.
    pub sinks: Vec<String>,
    /// Decrypt-style source functions (the predefined IPP list).
    pub decrypt_functions: Vec<String>,
    /// Free-form engine options (`loop-bound`, `max-paths`, …).
    pub options: BTreeMap<String, String>,
}

impl AnalysisConfig {
    /// Parses the XML configuration text.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on malformed XML or unknown elements.
    pub fn from_xml(source: &str) -> Result<AnalysisConfig, ConfigError> {
        let mut config = AnalysisConfig::default();
        let elements = parse_elements(source)?;
        let Some(root) = elements.first() else {
            return Err(ConfigError {
                message: "missing <privacyscope> root".into(),
                position: 0,
            });
        };
        if root.name != "privacyscope" {
            return Err(ConfigError {
                message: format!("expected <privacyscope> root, found <{}>", root.name),
                position: root.position,
            });
        }
        for child in &root.children {
            let attr = |key: &str| -> Result<String, ConfigError> {
                child.attrs.get(key).cloned().ok_or_else(|| ConfigError {
                    message: format!("<{}> needs a `{key}` attribute", child.name),
                    position: child.position,
                })
            };
            match child.name.as_str() {
                "target" => config.targets.push(attr("function")?),
                "secret" => config.secret_params.push(attr("param")?),
                "public" => config.public_params.push(attr("param")?),
                "sink" => config.sinks.push(attr("function")?),
                "decrypt" => config.decrypt_functions.push(attr("function")?),
                "option" => {
                    config.options.insert(attr("name")?, attr("value")?);
                }
                other => {
                    return Err(ConfigError {
                        message: format!("unknown element <{other}>"),
                        position: child.position,
                    })
                }
            }
        }
        Ok(config)
    }

    /// Reads an integer option, falling back to `default`.
    pub fn option_usize(&self, name: &str, default: usize) -> usize {
        self.options
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

#[derive(Debug)]
struct Element {
    name: String,
    attrs: BTreeMap<String, String>,
    children: Vec<Element>,
    position: usize,
}

fn parse_elements(source: &str) -> Result<Vec<Element>, ConfigError> {
    let mut pos = 0;
    let mut stack: Vec<Element> = Vec::new();
    let mut roots = Vec::new();
    let bytes = source.as_bytes();

    while pos < bytes.len() {
        // skip whitespace/text
        if bytes[pos] != b'<' {
            pos += 1;
            continue;
        }
        if source[pos..].starts_with("<!--") {
            match source[pos..].find("-->") {
                Some(end) => pos += end + 3,
                None => {
                    return Err(ConfigError {
                        message: "unterminated comment".into(),
                        position: pos,
                    })
                }
            }
            continue;
        }
        if source[pos..].starts_with("<?") {
            match source[pos..].find("?>") {
                Some(end) => pos += end + 2,
                None => {
                    return Err(ConfigError {
                        message: "unterminated processing instruction".into(),
                        position: pos,
                    })
                }
            }
            continue;
        }
        if source[pos..].starts_with("</") {
            let end = source[pos..].find('>').ok_or(ConfigError {
                message: "unterminated end tag".into(),
                position: pos,
            })?;
            let name = source[pos + 2..pos + end].trim();
            let element = stack.pop().ok_or(ConfigError {
                message: format!("unmatched </{name}>"),
                position: pos,
            })?;
            if element.name != name {
                return Err(ConfigError {
                    message: format!("expected </{}>, found </{name}>", element.name),
                    position: pos,
                });
            }
            pos += end + 1;
            match stack.last_mut() {
                Some(parent) => parent.children.push(element),
                None => roots.push(element),
            }
            continue;
        }
        // start tag
        let tag_end = source[pos..].find('>').ok_or(ConfigError {
            message: "unterminated tag".into(),
            position: pos,
        })?;
        let inner = &source[pos + 1..pos + tag_end];
        let self_closing = inner.ends_with('/');
        let inner = inner.trim_end_matches('/').trim();
        let mut parts = inner.splitn(2, char::is_whitespace);
        let name = parts.next().unwrap_or_default().to_string();
        if name.is_empty() {
            return Err(ConfigError {
                message: "empty tag name".into(),
                position: pos,
            });
        }
        let mut attrs = BTreeMap::new();
        if let Some(rest) = parts.next() {
            parse_attrs(rest, pos, &mut attrs)?;
        }
        let element = Element {
            name,
            attrs,
            children: Vec::new(),
            position: pos,
        };
        pos += tag_end + 1;
        if self_closing {
            match stack.last_mut() {
                Some(parent) => parent.children.push(element),
                None => roots.push(element),
            }
        } else {
            stack.push(element);
        }
    }

    if let Some(open) = stack.pop() {
        return Err(ConfigError {
            message: format!("unclosed <{}>", open.name),
            position: open.position,
        });
    }
    Ok(roots)
}

fn parse_attrs(
    text: &str,
    position: usize,
    out: &mut BTreeMap<String, String>,
) -> Result<(), ConfigError> {
    let mut rest = text.trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or(ConfigError {
            message: format!("malformed attribute near `{rest}`"),
            position,
        })?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        let quote = after.chars().next().ok_or(ConfigError {
            message: "missing attribute value".into(),
            position,
        })?;
        if quote != '"' && quote != '\'' {
            return Err(ConfigError {
                message: "attribute value must be quoted".into(),
                position,
            });
        }
        let close = after[1..].find(quote).ok_or(ConfigError {
            message: "unterminated attribute value".into(),
            position,
        })?;
        let value = after[1..1 + close].to_string();
        out.insert(key, value);
        rest = after[close + 2..].trim_start();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<?xml version="1.0"?>
<privacyscope>
  <!-- analyze the batch entry point -->
  <target function="enclave_process_data"/>
  <secret param="secrets"/>
  <public param="len"/>
  <sink function="ocall_send"/>
  <decrypt function="ipp_aes_decrypt"/>
  <option name="loop-bound" value="6"/>
</privacyscope>
"#;

    #[test]
    fn parses_sample() {
        let config = AnalysisConfig::from_xml(SAMPLE).expect("parses");
        assert_eq!(config.targets, vec!["enclave_process_data"]);
        assert_eq!(config.secret_params, vec!["secrets"]);
        assert_eq!(config.public_params, vec!["len"]);
        assert_eq!(config.sinks, vec!["ocall_send"]);
        assert_eq!(config.decrypt_functions, vec!["ipp_aes_decrypt"]);
        assert_eq!(config.option_usize("loop-bound", 4), 6);
        assert_eq!(config.option_usize("max-paths", 4096), 4096);
    }

    #[test]
    fn empty_root_is_valid() {
        let config = AnalysisConfig::from_xml("<privacyscope></privacyscope>").unwrap();
        assert!(config.targets.is_empty());
    }

    #[test]
    fn wrong_root_rejected() {
        let err = AnalysisConfig::from_xml("<settings/>").unwrap_err();
        assert!(err.to_string().contains("privacyscope"));
    }

    #[test]
    fn unknown_element_rejected() {
        let err = AnalysisConfig::from_xml("<privacyscope><mystery/></privacyscope>").unwrap_err();
        assert!(err.to_string().contains("unknown element"));
    }

    #[test]
    fn missing_attribute_rejected() {
        let err = AnalysisConfig::from_xml("<privacyscope><target/></privacyscope>").unwrap_err();
        assert!(err.to_string().contains("function"));
    }

    #[test]
    fn unclosed_tag_rejected() {
        let err = AnalysisConfig::from_xml("<privacyscope>").unwrap_err();
        assert!(err.to_string().contains("unclosed"));
    }

    #[test]
    fn mismatched_end_tag_rejected() {
        let err = AnalysisConfig::from_xml("<privacyscope></oops>").unwrap_err();
        assert!(err.to_string().contains("expected </privacyscope>"));
    }

    #[test]
    fn single_quoted_attributes() {
        let config =
            AnalysisConfig::from_xml("<privacyscope><target function='f'/></privacyscope>")
                .unwrap();
        assert_eq!(config.targets, vec!["f"]);
    }
}
