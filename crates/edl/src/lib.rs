//! SGX EDL (Enclave Definition Language) parsing and analysis
//! configuration.
//!
//! An EDL file declares an enclave's boundary: `trusted` ECALLs (host →
//! enclave) and `untrusted` OCALLs (enclave → host), each a C-like function
//! prototype whose pointer parameters carry marshalling attributes —
//! `[in]`, `[out]`, `[in, out]`, with optional `size=`/`count=` bounds.
//! PrivacyScope reads the same file the SGX SDK's `edger8r` does and derives
//! its default policy from it (§V-C, §VI-B): `[in]` parameters are secret
//! sources, `[out]` parameters and return values are observable sinks.
//!
//! The crate also implements the analyzer's XML configuration file
//! ([`config`]): the user-provided list of target functions, secret/sink
//! overrides, and the predefined decrypt-function list.
//!
//! # Examples
//!
//! ```
//! let edl = edl::parse_edl(r#"
//!     enclave {
//!         trusted {
//!             public int enclave_process_data([in] char *secrets, [out] char *output);
//!         };
//!         untrusted {
//!             void ocall_log([in] char *msg);
//!         };
//!     };
//! "#)?;
//! let ecall = &edl.trusted[0];
//! assert_eq!(ecall.name, "enclave_process_data");
//! assert!(ecall.params[0].attributes.is_in());
//! assert!(ecall.params[1].attributes.is_out());
//! # Ok::<(), edl::EdlError>(())
//! ```

pub mod ast;
pub mod config;
pub mod parser;

pub use ast::{Direction, EdlFile, ParamAttributes, Prototype};
pub use config::{AnalysisConfig, ConfigError};
pub use parser::{parse_edl, EdlError};
