//! Property test: the pretty-printer emits parseable Mini-C whose re-parse
//! is a fixpoint (parse ∘ pretty is idempotent on the printed form), for
//! randomly generated expressions and statements.

use proptest::prelude::*;

#[derive(Debug, Clone)]
enum GenExpr {
    Int(i64),
    Var(usize), // index into the parameter pool
    Neg(Box<GenExpr>),
    Not(Box<GenExpr>),
    Bin(&'static str, Box<GenExpr>, Box<GenExpr>),
    Index(Box<GenExpr>), // xs[e]
    Call1(&'static str, Box<GenExpr>),
    Ternary(Box<GenExpr>, Box<GenExpr>, Box<GenExpr>),
}

const VARS: &[&str] = &["a", "b", "c"];
const BINOPS: &[&str] = &[
    "+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&", "|", "^", "<<", ">>", "&&",
    "||",
];

fn arb_expr() -> impl Strategy<Value = GenExpr> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(GenExpr::Int),
        (0usize..VARS.len()).prop_map(GenExpr::Var),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| GenExpr::Neg(Box::new(e))),
            inner.clone().prop_map(|e| GenExpr::Not(Box::new(e))),
            ((0..BINOPS.len()), inner.clone(), inner.clone()).prop_map(|(i, a, b)| GenExpr::Bin(
                BINOPS[i],
                Box::new(a),
                Box::new(b)
            )),
            inner.clone().prop_map(|e| GenExpr::Index(Box::new(e))),
            inner
                .clone()
                .prop_map(|e| GenExpr::Call1("abs", Box::new(e))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| GenExpr::Ternary(
                Box::new(c),
                Box::new(t),
                Box::new(e)
            )),
        ]
    })
}

fn render(e: &GenExpr) -> String {
    match e {
        GenExpr::Int(v) => {
            if *v < 0 {
                format!("({v})")
            } else {
                v.to_string()
            }
        }
        GenExpr::Var(i) => VARS[*i].to_string(),
        GenExpr::Neg(a) => format!("(-{})", render(a)),
        GenExpr::Not(a) => format!("(!{})", render(a)),
        GenExpr::Bin(op, a, b) => format!("({} {op} {})", render(a), render(b)),
        GenExpr::Index(i) => format!("xs[{}]", render(i)),
        GenExpr::Call1(f, a) => format!("{f}({})", render(a)),
        GenExpr::Ternary(c, t, e) => {
            format!("({} ? {} : {})", render(c), render(t), render(e))
        }
    }
}

fn wrap(expr_text: &str) -> String {
    format!("long f(int a, int b, int c, int *xs) {{ return {expr_text}; }}\n")
}

proptest! {
    /// pretty(parse(src)) parses, and pretty ∘ parse is a fixpoint on it.
    #[test]
    fn pretty_print_round_trip(gen in arb_expr()) {
        let source = wrap(&render(&gen));
        let unit = match minic::parse(&source) {
            Ok(unit) => unit,
            // some generated expressions are ill-typed (e.g. `xs[i] && p`
            // over pointers is fine, but `%` on a pointer is not); those
            // are outside the property's domain.
            Err(_) => return Ok(()),
        };
        let printed = minic::pretty::unit(&unit);
        let reparsed = minic::parse(&printed)
            .unwrap_or_else(|e| panic!("pretty output does not parse: {e}\n{printed}"));
        let reprinted = minic::pretty::unit(&reparsed);
        prop_assert_eq!(printed, reprinted);
    }

    /// Lexing never panics and spans cover the input for arbitrary bytes.
    #[test]
    fn lexer_total_on_ascii(input in "[ -~\\n\\t]{0,120}") {
        match minic::lexer::lex(&input) {
            Ok(tokens) => {
                prop_assert!(!tokens.is_empty());
                for token in &tokens {
                    prop_assert!(token.span.start <= token.span.end);
                    prop_assert!(token.span.end <= input.len() + 1);
                }
            }
            Err(err) => {
                prop_assert!(err.span().start <= input.len());
            }
        }
    }

    /// The LoC counter is insensitive to appended comments and blank lines.
    #[test]
    fn loc_ignores_trivia(blanks in 0usize..5, comment in "[ -~]{0,30}") {
        let base = "int x;\nint y;\n";
        let mut noisy = String::from(base);
        for _ in 0..blanks {
            noisy.push('\n');
        }
        // guard against comment terminators inside the generated text
        let safe = comment.replace("*/", "");
        noisy.push_str(&format!("// {safe}\n/* {safe} */\n"));
        prop_assert_eq!(minic::count_loc(base), minic::count_loc(&noisy));
    }
}
