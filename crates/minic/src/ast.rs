//! The Mini-C abstract syntax tree.
//!
//! Every [`Expr`] carries a unique [`ExprId`], the key used by the symbolic
//! engine's *environment* (lvalue expression → memory region) per the
//! paper's §VI-B state tuple.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::span::Span;
use crate::types::Type;

/// Unique identifier of an expression node within a translation unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ExprId(pub u32);

impl fmt::Display for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A parsed (and, after [`crate::sema::check`], resolved) translation unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TranslationUnit {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// Struct layouts, filled in by semantic analysis.
    pub structs: BTreeMap<String, StructDef>,
    /// Number of expression ids handed out (ids are `0..expr_count`).
    pub expr_count: u32,
}

impl TranslationUnit {
    /// Iterates over all function *definitions* (prototypes excluded).
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.items.iter().filter_map(|item| match item {
            Item::Function(f) if f.body.is_some() => Some(f),
            _ => None,
        })
    }

    /// Looks up a function definition or prototype by name.
    ///
    /// Definitions shadow prototypes of the same name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        let mut proto = None;
        for item in &self.items {
            if let Item::Function(f) = item {
                if f.name == name {
                    if f.body.is_some() {
                        return Some(f);
                    }
                    proto.get_or_insert(f);
                }
            }
        }
        proto
    }

    /// Iterates over global variable declarations.
    pub fn globals(&self) -> impl Iterator<Item = &VarDecl> {
        self.items.iter().filter_map(|item| match item {
            Item::Global(decl) => Some(decl),
            _ => None,
        })
    }

    /// Looks up a struct definition by name.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs.get(name)
    }
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Item {
    /// A function definition or prototype.
    Function(Function),
    /// A global variable.
    Global(VarDecl),
    /// A struct definition.
    Struct(StructDef),
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructDef {
    /// The struct tag, e.g. `point` in `struct point`.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<Field>,
    /// Source location of the definition.
    pub span: Span,
}

impl StructDef {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// A struct field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Source location.
    pub span: Span,
}

/// A function definition or prototype.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Body, `None` for prototypes.
    pub body: Option<Vec<Stmt>>,
    /// Source location of the signature.
    pub span: Span,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type (arrays decay to pointers, as in C).
    pub ty: Type,
    /// Source location.
    pub span: Span,
}

/// A local or global variable declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional initializer.
    pub init: Option<Init>,
    /// Source location.
    pub span: Span,
}

/// A variable initializer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Init {
    /// A scalar initializer, e.g. `= 3 * x`.
    Expr(Expr),
    /// A brace-enclosed list, e.g. `= {1, 2, 3}`.
    List(Vec<Init>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stmt {
    /// What kind of statement.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StmtKind {
    /// A local declaration.
    Decl(VarDecl),
    /// An expression statement; `None` is the empty statement `;`.
    Expr(Option<Expr>),
    /// A `{ … }` block.
    Block(Vec<Stmt>),
    /// `if (cond) then_s else else_s`.
    If {
        /// Branch condition.
        cond: Expr,
        /// Taken when the condition is non-zero.
        then_s: Box<Stmt>,
        /// Taken when the condition is zero, if present.
        else_s: Option<Box<Stmt>>,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `do body while (cond);`.
    DoWhile {
        /// Loop body (always executes at least once).
        body: Box<Stmt>,
        /// Loop condition.
        cond: Expr,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Initialization (declaration or expression statement).
        init: Option<Box<Stmt>>,
        /// Continuation condition, absent means `true`.
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `return expr;` or `return;`.
    Return(Option<Expr>),
    /// `break;`.
    Break,
    /// `continue;`.
    Continue,
}

/// An expression with its unique id, source span and (post-sema) type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Expr {
    /// Unique node id within the translation unit.
    pub id: ExprId,
    /// What kind of expression.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
    /// The expression's type, filled in by [`crate::sema::check`].
    pub ty: Option<Type>,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Floating literal.
    FloatLit(f64),
    /// Character literal (stored numerically).
    CharLit(i64),
    /// String literal.
    StrLit(String),
    /// Variable reference.
    Ident(String),
    /// A unary operator application (`-`, `+`, `!`, `~`).
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// Pointer dereference `*e`.
    Deref(Box<Expr>),
    /// Address-of `&e`.
    AddrOf(Box<Expr>),
    /// A binary operator application.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Assignment `lhs = rhs` or compound assignment `lhs op= rhs`.
    Assign {
        /// `None` for plain `=`, `Some(op)` for `op=`.
        op: Option<BinOp>,
        /// Assignment target (must be an lvalue).
        lhs: Box<Expr>,
        /// Assigned value.
        rhs: Box<Expr>,
    },
    /// Conditional `cond ? then_e : else_e`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when non-zero.
        then_e: Box<Expr>,
        /// Value when zero.
        else_e: Box<Expr>,
    },
    /// A direct function call `callee(args…)`.
    Call {
        /// Name of the called function.
        callee: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Array indexing `base[index]`.
    Index {
        /// The array or pointer expression.
        base: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
    /// Member access `base.field` or `base->field`.
    Member {
        /// The struct (or struct pointer) expression.
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// `true` for `->`.
        arrow: bool,
    },
    /// A cast `(ty)expr`.
    Cast {
        /// Target type.
        ty: Type,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `sizeof(type)`.
    SizeofType(Type),
    /// `sizeof expr`.
    SizeofExpr(Box<Expr>),
    /// Pre/post increment/decrement.
    IncDec {
        /// Which of the four forms.
        op: IncDecOp,
        /// The lvalue operand.
        expr: Box<Expr>,
    },
    /// Comma expression `lhs, rhs`.
    Comma(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Whether this expression is syntactically an lvalue.
    pub fn is_lvalue(&self) -> bool {
        matches!(
            self.kind,
            ExprKind::Ident(_)
                | ExprKind::Deref(_)
                | ExprKind::Index { .. }
                | ExprKind::Member { .. }
        )
    }

    /// Visits this expression and all sub-expressions, pre-order.
    pub fn walk<'a>(&'a self, visit: &mut dyn FnMut(&'a Expr)) {
        visit(self);
        match &self.kind {
            ExprKind::IntLit(_)
            | ExprKind::FloatLit(_)
            | ExprKind::CharLit(_)
            | ExprKind::StrLit(_)
            | ExprKind::Ident(_)
            | ExprKind::SizeofType(_) => {}
            ExprKind::Unary { expr, .. }
            | ExprKind::Deref(expr)
            | ExprKind::AddrOf(expr)
            | ExprKind::Cast { expr, .. }
            | ExprKind::SizeofExpr(expr)
            | ExprKind::IncDec { expr, .. } => expr.walk(visit),
            ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
                lhs.walk(visit);
                rhs.walk(visit);
            }
            ExprKind::Ternary {
                cond,
                then_e,
                else_e,
            } => {
                cond.walk(visit);
                then_e.walk(visit);
                else_e.walk(visit);
            }
            ExprKind::Call { args, .. } => {
                for arg in args {
                    arg.walk(visit);
                }
            }
            ExprKind::Index { base, index } => {
                base.walk(visit);
                index.walk(visit);
            }
            ExprKind::Member { base, .. } => base.walk(visit),
            ExprKind::Comma(lhs, rhs) => {
                lhs.walk(visit);
                rhs.walk(visit);
            }
        }
    }
}

/// Unary operators (value-producing; `*` and `&` are separate nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// No-op `+e`.
    Plus,
    /// Logical negation `!e`.
    Not,
    /// Bitwise complement `~e`.
    BitNot,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Neg => "-",
            UnOp::Plus => "+",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
        };
        f.write_str(s)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&`
    BitAnd,
    /// `^`
    BitXor,
    /// `|`
    BitOr,
    /// `&&`
    LogAnd,
    /// `||`
    LogOr,
}

impl BinOp {
    /// Whether the operator yields a boolean (0/1) result.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// Whether the operator is `&&` or `||` (short-circuiting).
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::LogAnd | BinOp::LogOr)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::BitAnd => "&",
            BinOp::BitXor => "^",
            BinOp::BitOr => "|",
            BinOp::LogAnd => "&&",
            BinOp::LogOr => "||",
        };
        f.write_str(s)
    }
}

/// The four increment/decrement forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IncDecOp {
    /// `++e`
    PreInc,
    /// `--e`
    PreDec,
    /// `e++`
    PostInc,
    /// `e--`
    PostDec,
}

impl IncDecOp {
    /// Whether the operand is read before mutation (post forms).
    pub fn is_post(self) -> bool {
        matches!(self, IncDecOp::PostInc | IncDecOp::PostDec)
    }

    /// +1 or -1.
    pub fn delta(self) -> i64 {
        match self {
            IncDecOp::PreInc | IncDecOp::PostInc => 1,
            IncDecOp::PreDec | IncDecOp::PostDec => -1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(kind: ExprKind) -> Expr {
        Expr {
            id: ExprId(0),
            kind,
            span: Span::default(),
            ty: None,
        }
    }

    #[test]
    fn lvalue_classification() {
        assert!(expr(ExprKind::Ident("x".into())).is_lvalue());
        assert!(!expr(ExprKind::IntLit(3)).is_lvalue());
        let deref = expr(ExprKind::Deref(Box::new(expr(ExprKind::Ident("p".into())))));
        assert!(deref.is_lvalue());
    }

    #[test]
    fn walk_visits_all_nodes() {
        let e = expr(ExprKind::Binary {
            op: BinOp::Add,
            lhs: Box::new(expr(ExprKind::IntLit(1))),
            rhs: Box::new(expr(ExprKind::Unary {
                op: UnOp::Neg,
                expr: Box::new(expr(ExprKind::Ident("x".into()))),
            })),
        });
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 4);
    }

    #[test]
    fn incdec_properties() {
        assert!(IncDecOp::PostInc.is_post());
        assert!(!IncDecOp::PreDec.is_post());
        assert_eq!(IncDecOp::PreDec.delta(), -1);
        assert_eq!(IncDecOp::PostInc.delta(), 1);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::LogOr.is_logical());
        assert!(!BinOp::BitOr.is_logical());
    }
}
