//! Token kinds produced by the lexer.

use std::fmt;

use crate::span::Span;

/// A lexical token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is (and its payload for literals/identifiers).
    pub kind: TokenKind,
    /// Where in the source it came from.
    pub span: Span,
}

/// The kinds of Mini-C tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier, e.g. `secrets`.
    Ident(String),
    /// An integer literal (decimal, `0x` hex, or `0` octal), e.g. `100`.
    IntLit(i64),
    /// A floating literal, e.g. `0.5`.
    FloatLit(f64),
    /// A character literal, e.g. `'a'`, stored as its numeric value.
    CharLit(i64),
    /// A string literal with escapes resolved.
    StrLit(String),
    /// A keyword, e.g. `while`.
    Keyword(Keyword),
    /// Punctuation or an operator, e.g. `+=`.
    Punct(Punct),
    /// End of input (always the final token).
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(name) => write!(f, "identifier `{name}`"),
            TokenKind::IntLit(v) => write!(f, "integer literal `{v}`"),
            TokenKind::FloatLit(v) => write!(f, "float literal `{v}`"),
            TokenKind::CharLit(v) => write!(f, "char literal `{v}`"),
            TokenKind::StrLit(s) => write!(f, "string literal {s:?}"),
            TokenKind::Keyword(kw) => write!(f, "keyword `{kw}`"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

macro_rules! keywords {
    ($($variant:ident => $text:literal),+ $(,)?) => {
        /// Mini-C keywords.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Keyword {
            $(#[doc = concat!("The `", $text, "` keyword.")] $variant),+
        }

        impl Keyword {
            /// Looks up a keyword from identifier text.
            #[allow(clippy::should_implement_trait)] // fallible lookup, not parsing
            pub fn from_str(text: &str) -> Option<Keyword> {
                match text {
                    $($text => Some(Keyword::$variant),)+
                    _ => None,
                }
            }

            /// The keyword's source text.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(Keyword::$variant => $text,)+
                }
            }
        }

        impl fmt::Display for Keyword {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }
    };
}

keywords! {
    Void => "void",
    Char => "char",
    Int => "int",
    Long => "long",
    Float => "float",
    Double => "double",
    Unsigned => "unsigned",
    Signed => "signed",
    Struct => "struct",
    If => "if",
    Else => "else",
    While => "while",
    Do => "do",
    For => "for",
    Return => "return",
    Break => "break",
    Continue => "continue",
    Sizeof => "sizeof",
    Const => "const",
    Static => "static",
}

macro_rules! puncts {
    ($($variant:ident => $text:literal),+ $(,)?) => {
        /// Punctuation and operator tokens, longest first in the lexer.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Punct {
            $(#[doc = concat!("`", $text, "`")] $variant),+
        }

        impl Punct {
            /// All punctuation in match order (longest first).
            pub const ALL: &'static [(Punct, &'static str)] = &[
                $((Punct::$variant, $text),)+
            ];

            /// The operator's source text.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(Punct::$variant => $text,)+
                }
            }
        }

        impl fmt::Display for Punct {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }
    };
}

// Order matters: the lexer tries these in sequence, so multi-character
// operators must precede their prefixes.
puncts! {
    ShlAssign => "<<=",
    ShrAssign => ">>=",
    Ellipsis => "...",
    Arrow => "->",
    PlusPlus => "++",
    MinusMinus => "--",
    Shl => "<<",
    Shr => ">>",
    Le => "<=",
    Ge => ">=",
    EqEq => "==",
    Ne => "!=",
    AndAnd => "&&",
    OrOr => "||",
    PlusAssign => "+=",
    MinusAssign => "-=",
    StarAssign => "*=",
    SlashAssign => "/=",
    PercentAssign => "%=",
    AmpAssign => "&=",
    PipeAssign => "|=",
    CaretAssign => "^=",
    Plus => "+",
    Minus => "-",
    Star => "*",
    Slash => "/",
    Percent => "%",
    Amp => "&",
    Pipe => "|",
    Caret => "^",
    Tilde => "~",
    Bang => "!",
    Assign => "=",
    Lt => "<",
    Gt => ">",
    Question => "?",
    Colon => ":",
    Semi => ";",
    Comma => ",",
    Dot => ".",
    LParen => "(",
    RParen => ")",
    LBrace => "{",
    RBrace => "}",
    LBracket => "[",
    RBracket => "]",
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [Keyword::Int, Keyword::While, Keyword::Sizeof] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::from_str("enum"), None);
    }

    #[test]
    fn punct_order_is_longest_first() {
        // If an earlier operator were a prefix of a later one, the lexer
        // would always match the short form and never reach the long one.
        for (i, (_, a)) in Punct::ALL.iter().enumerate() {
            for (_, b) in &Punct::ALL[..i] {
                assert!(
                    !a.starts_with(b),
                    "`{a}` is unreachable: its prefix `{b}` matches first"
                );
            }
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(TokenKind::Punct(Punct::Arrow).to_string(), "`->`");
        assert_eq!(
            TokenKind::Keyword(Keyword::For).to_string(),
            "keyword `for`"
        );
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
    }
}
