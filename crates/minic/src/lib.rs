//! Mini-C: the C-subset frontend used by the PrivacyScope reproduction.
//!
//! The paper's prototype is built on the Clang Static Analyzer; this crate is
//! the corresponding front half of that substitution — a from-scratch lexer,
//! recursive-descent parser, symbol resolver and light type checker for the
//! C subset that the paper's evaluation corpus (ported open-source ML
//! modules) actually exercises:
//!
//! * types: `void`, `char`, `int`, `long`, `unsigned`, `float`, `double`,
//!   pointers, fixed-size arrays, `struct`s;
//! * declarations: globals, functions, locals with initializers;
//! * statements: compound blocks, `if`/`else`, `while`, `do`-`while`, `for`,
//!   `return`, `break`, `continue`, expression statements;
//! * expressions: the full C operator set over those types — assignment and
//!   compound assignment, ternary, logical/bitwise/relational/arithmetic
//!   operators, casts, `sizeof`, calls, array indexing, `.`/`->` member
//!   access, pre/post increment/decrement, string and character literals.
//!
//! Every expression node carries a stable [`ast::ExprId`], which downstream
//! analyses (the `symexec` crate) use as the key of the *environment*
//! (lvalue expression → memory region) in the Clang-style state tuple
//! *(stmt, env, σ, π)* of the paper's §VI-B.
//!
//! # Examples
//!
//! ```
//! let src = r#"
//!     int add(int a, int b) { return a + b; }
//! "#;
//! let unit = minic::parse(src)?;
//! assert_eq!(unit.functions().count(), 1);
//! # Ok::<(), minic::Error>(())
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod span;
pub mod token;
pub mod types;

pub use ast::TranslationUnit;
pub use error::Error;
pub use span::{LineCol, Span};

/// Parses a Mini-C translation unit from source text.
///
/// This is the primary entry point: it lexes, parses, resolves symbols and
/// type-checks, returning the decorated AST.
///
/// # Errors
///
/// Returns [`Error`] on any lexical, syntactic or semantic violation, with a
/// source span.
///
/// # Examples
///
/// ```
/// let unit = minic::parse("int main() { return 0; }")?;
/// assert!(unit.function("main").is_some());
/// # Ok::<(), minic::Error>(())
/// ```
pub fn parse(source: &str) -> Result<TranslationUnit, Error> {
    let tokens = lexer::lex(source)?;
    let mut unit = parser::parse_tokens(source, tokens)?;
    sema::check(&mut unit)?;
    Ok(unit)
}

/// Counts non-blank, non-comment-only source lines (the LoC metric of the
/// paper's Table V).
///
/// # Examples
///
/// ```
/// let loc = minic::count_loc("int x; // decl\n\n/* comment */\nint y;\n");
/// assert_eq!(loc, 2);
/// ```
pub fn count_loc(source: &str) -> usize {
    let mut in_block_comment = false;
    let mut loc = 0;
    for line in source.lines() {
        let mut rest = line.trim();
        let mut has_code = false;
        while !rest.is_empty() {
            if in_block_comment {
                match rest.find("*/") {
                    Some(end) => {
                        in_block_comment = false;
                        rest = rest[end + 2..].trim_start();
                    }
                    None => {
                        rest = "";
                    }
                }
            } else if let Some(stripped) = rest.strip_prefix("//") {
                let _ = stripped;
                rest = "";
            } else if rest.starts_with("/*") {
                in_block_comment = true;
                rest = &rest[2..];
            } else {
                has_code = true;
                // Advance to the next comment opener, if any.
                let next = rest.find("//").into_iter().chain(rest.find("/*")).min();
                match next {
                    Some(pos) if pos > 0 => rest = rest[pos..].trim_start(),
                    Some(_) => unreachable!("comment openers handled above"),
                    None => rest = "",
                }
            }
        }
        if has_code {
            loc += 1;
        }
    }
    loc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_counts_code_lines_only() {
        let src = "\n// only comment\nint a;\n  \nint b; // trailing\n/* multi\nline\ncomment */\nint c;\n";
        assert_eq!(count_loc(src), 3);
    }

    #[test]
    fn loc_handles_code_before_block_comment() {
        assert_eq!(count_loc("int a; /* c */\n/* c2 */ int b;\n"), 2);
    }

    #[test]
    fn loc_empty_source() {
        assert_eq!(count_loc(""), 0);
    }

    #[test]
    fn parse_smoke() {
        let unit = parse("int main() { int x = 1; return x; }").expect("parses");
        assert!(unit.function("main").is_some());
    }
}
