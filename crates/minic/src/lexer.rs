//! The Mini-C lexer.

use crate::error::Error;
use crate::span::Span;
use crate::token::{Keyword, Punct, Token, TokenKind};

/// Tokenizes Mini-C source text.
///
/// Comments (`//…` and `/*…*/`) and whitespace are skipped. The returned
/// vector always ends with a single [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns [`Error`] on unterminated comments/literals, malformed numeric
/// literals, or characters outside the language.
///
/// # Examples
///
/// ```
/// use minic::token::TokenKind;
/// let tokens = minic::lexer::lex("x += 0x10;")?;
/// assert_eq!(tokens.len(), 5); // x, +=, 16, ;, EOF
/// assert!(matches!(tokens[2].kind, TokenKind::IntLit(16)));
/// # Ok::<(), minic::Error>(())
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>, Error> {
    Lexer::new(source).run()
}

struct Lexer<'src> {
    src: &'src str,
    bytes: &'src [u8],
    pos: usize,
}

impl<'src> Lexer<'src> {
    fn new(src: &'src str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn run(mut self) -> Result<Vec<Token>, Error> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(byte) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::point(self.pos),
                });
                return Ok(tokens);
            };
            let kind = match byte {
                b'0'..=b'9' => self.number()?,
                b'\'' => self.char_literal()?,
                b'"' => self.string_literal()?,
                b if b.is_ascii_alphabetic() || b == b'_' => self.ident_or_keyword(),
                _ => self.punct()?,
            };
            tokens.push(Token {
                kind,
                span: Span::new(start, self.pos),
            });
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.bytes.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_trivia(&mut self) -> Result<(), Error> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match (self.peek(), self.peek_at(1)) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(Error::lex(
                                    "unterminated block comment",
                                    Span::new(start, self.pos),
                                ))
                            }
                        }
                    }
                }
                Some(b'#') => {
                    // Preprocessor lines (e.g. `#include`) are tolerated and
                    // skipped: the corpus ships self-contained sources.
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self) -> Result<TokenKind, Error> {
        let start = self.pos;
        if self.peek() == Some(b'0') && matches!(self.peek_at(1), Some(b'x') | Some(b'X')) {
            self.pos += 2;
            let digits_start = self.pos;
            while matches!(self.peek(), Some(b) if b.is_ascii_hexdigit()) {
                self.pos += 1;
            }
            if self.pos == digits_start {
                return Err(Error::lex(
                    "hex literal needs at least one digit",
                    Span::new(start, self.pos),
                ));
            }
            let text = &self.src[digits_start..self.pos];
            let value = i64::from_str_radix(text, 16)
                .map_err(|_| Error::lex("hex literal out of range", Span::new(start, self.pos)))?;
            self.integer_suffix();
            return Ok(TokenKind::IntLit(value));
        }

        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && matches!(self.peek_at(1), Some(b) if b.is_ascii_digit()) {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let mut look = 1;
            if matches!(self.peek_at(1), Some(b'+') | Some(b'-')) {
                look = 2;
            }
            if matches!(self.peek_at(look), Some(b) if b.is_ascii_digit()) {
                is_float = true;
                self.pos += look;
                while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            let value: f64 = text
                .parse()
                .map_err(|_| Error::lex("malformed float literal", Span::new(start, self.pos)))?;
            if matches!(self.peek(), Some(b'f') | Some(b'F')) {
                self.pos += 1;
            }
            Ok(TokenKind::FloatLit(value))
        } else {
            let value: i64 = text.parse().map_err(|_| {
                Error::lex("integer literal out of range", Span::new(start, self.pos))
            })?;
            self.integer_suffix();
            Ok(TokenKind::IntLit(value))
        }
    }

    fn integer_suffix(&mut self) {
        while matches!(
            self.peek(),
            Some(b'u') | Some(b'U') | Some(b'l') | Some(b'L')
        ) {
            self.pos += 1;
        }
    }

    fn escape(&mut self, start: usize) -> Result<i64, Error> {
        let Some(code) = self.bump() else {
            return Err(Error::lex(
                "unterminated escape sequence",
                Span::new(start, self.pos),
            ));
        };
        Ok(match code {
            b'n' => b'\n' as i64,
            b't' => b'\t' as i64,
            b'r' => b'\r' as i64,
            b'0' => 0,
            b'\\' => b'\\' as i64,
            b'\'' => b'\'' as i64,
            b'"' => b'"' as i64,
            other => {
                return Err(Error::lex(
                    format!("unknown escape `\\{}`", other as char),
                    Span::new(start, self.pos),
                ))
            }
        })
    }

    fn char_literal(&mut self) -> Result<TokenKind, Error> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let value = match self.bump() {
            Some(b'\\') => self.escape(start)?,
            Some(b'\'') | None => {
                return Err(Error::lex("empty char literal", Span::new(start, self.pos)))
            }
            Some(b) => b as i64,
        };
        if self.bump() != Some(b'\'') {
            return Err(Error::lex(
                "unterminated char literal",
                Span::new(start, self.pos),
            ));
        }
        Ok(TokenKind::CharLit(value))
    }

    fn string_literal(&mut self) -> Result<TokenKind, Error> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(TokenKind::StrLit(text)),
                Some(b'\\') => {
                    let value = self.escape(start)?;
                    text.push(value as u8 as char);
                }
                Some(b) => text.push(b as char),
                None => {
                    return Err(Error::lex(
                        "unterminated string literal",
                        Span::new(start, self.pos),
                    ))
                }
            }
        }
    }

    fn ident_or_keyword(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        match Keyword::from_str(text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text.to_string()),
        }
    }

    fn punct(&mut self) -> Result<TokenKind, Error> {
        let rest = &self.src[self.pos..];
        for (punct, text) in Punct::ALL {
            if rest.starts_with(text) {
                self.pos += text.len();
                return Ok(TokenKind::Punct(*punct));
            }
        }
        let bad = rest.chars().next().expect("peeked non-empty");
        Err(Error::lex(
            format!("unexpected character `{bad}`"),
            Span::new(self.pos, self.pos + bad.len_utf8()),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn empty_source_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
    }

    #[test]
    fn integers_decimal_hex() {
        assert_eq!(
            kinds("42 0x2A 0"),
            vec![
                TokenKind::IntLit(42),
                TokenKind::IntLit(42),
                TokenKind::IntLit(0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn integer_suffixes_are_consumed() {
        assert_eq!(
            kinds("10UL 3u"),
            vec![TokenKind::IntLit(10), TokenKind::IntLit(3), TokenKind::Eof]
        );
    }

    #[test]
    fn floats() {
        assert_eq!(
            kinds("0.5 1e3 2.5e-1 1.0f"),
            vec![
                TokenKind::FloatLit(0.5),
                TokenKind::FloatLit(1000.0),
                TokenKind::FloatLit(0.25),
                TokenKind::FloatLit(1.0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn member_access_is_not_a_float() {
        assert_eq!(
            kinds("a.b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct(Punct::Dot),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn char_and_string_literals() {
        assert_eq!(
            kinds(r#"'a' '\n' "hi\t""#),
            vec![
                TokenKind::CharLit(97),
                TokenKind::CharLit(10),
                TokenKind::StrLit("hi\t".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            kinds("int integer"),
            vec![
                TokenKind::Keyword(Keyword::Int),
                TokenKind::Ident("integer".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn maximal_munch_operators() {
        assert_eq!(
            kinds("a <<= b >> c->d"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct(Punct::ShlAssign),
                TokenKind::Ident("b".into()),
                TokenKind::Punct(Punct::Shr),
                TokenKind::Ident("c".into()),
                TokenKind::Punct(Punct::Arrow),
                TokenKind::Ident("d".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_and_preprocessor_are_skipped() {
        assert_eq!(
            kinds("#include <stdio.h>\n// line\nint /* block */ x;"),
            vec![
                TokenKind::Keyword(Keyword::Int),
                TokenKind::Ident("x".into()),
                TokenKind::Punct(Punct::Semi),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn unknown_character_errors() {
        let err = lex("int @").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn spans_cover_tokens() {
        let tokens = lex("ab + cd").unwrap();
        assert_eq!(tokens[0].span, Span::new(0, 2));
        assert_eq!(tokens[1].span, Span::new(3, 4));
        assert_eq!(tokens[2].span, Span::new(5, 7));
    }
}
