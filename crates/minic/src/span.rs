//! Source locations.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A half-open byte range `[start, end)` into the source text.
///
/// # Examples
///
/// ```
/// use minic::Span;
/// let span = Span::new(4, 9);
/// assert_eq!(span.len(), 5);
/// assert_eq!(span.slice("int x = 10;"), "x = 1");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start <= end, "span start {start} must not exceed end {end}");
        Span { start, end }
    }

    /// A zero-width span at `pos`.
    pub fn point(pos: usize) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length in bytes.
    pub fn len(self) -> usize {
        self.end - self.start
    }

    /// Whether the span is zero-width.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// The text this span covers (clamped to the source length).
    pub fn slice(self, source: &str) -> &str {
        let start = self.start.min(source.len());
        let end = self.end.min(source.len());
        &source[start..end]
    }

    /// Computes the 1-based line/column of the span start.
    pub fn line_col(self, source: &str) -> LineCol {
        let upto = &source[..self.start.min(source.len())];
        let line = upto.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = upto
            .rfind('\n')
            .map(|nl| self.start - nl)
            .unwrap_or(self.start + 1);
        LineCol { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// 1-based line and column numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LineCol {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_spans() {
        assert_eq!(Span::new(2, 5).to(Span::new(4, 9)), Span::new(2, 9));
        assert_eq!(Span::new(4, 9).to(Span::new(2, 5)), Span::new(2, 9));
    }

    #[test]
    fn line_col_first_line() {
        let src = "abc def";
        assert_eq!(Span::new(4, 7).line_col(src), LineCol { line: 1, col: 5 });
    }

    #[test]
    fn line_col_later_line() {
        let src = "a\nbb\nccc";
        let pos = src.find("ccc").unwrap();
        assert_eq!(Span::point(pos).line_col(src), LineCol { line: 3, col: 1 });
    }

    #[test]
    fn slice_is_clamped() {
        assert_eq!(Span::new(2, 100).slice("abcd"), "cd");
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn invalid_span_panics() {
        let _ = Span::new(5, 2);
    }
}
