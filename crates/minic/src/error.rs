//! Frontend error type.

use std::fmt;

use crate::span::Span;

/// The kind of a frontend failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// The lexer met a character or literal it cannot tokenize.
    Lex,
    /// The parser met an unexpected token.
    Parse,
    /// Symbol resolution or type checking failed.
    Sema,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorKind::Lex => write!(f, "lex error"),
            ErrorKind::Parse => write!(f, "parse error"),
            ErrorKind::Sema => write!(f, "semantic error"),
        }
    }
}

/// A lexical, syntactic or semantic error with its source span.
///
/// # Examples
///
/// ```
/// let err = minic::parse("int x = @;").unwrap_err();
/// assert!(err.to_string().contains("lex error"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    kind: ErrorKind,
    message: String,
    span: Span,
}

impl Error {
    /// Creates an error of the given kind.
    pub fn new(kind: ErrorKind, message: impl Into<String>, span: Span) -> Self {
        Error {
            kind,
            message: message.into(),
            span,
        }
    }

    /// Convenience constructor for lexer errors.
    pub fn lex(message: impl Into<String>, span: Span) -> Self {
        Error::new(ErrorKind::Lex, message, span)
    }

    /// Convenience constructor for parser errors.
    pub fn parse(message: impl Into<String>, span: Span) -> Self {
        Error::new(ErrorKind::Parse, message, span)
    }

    /// Convenience constructor for semantic errors.
    pub fn sema(message: impl Into<String>, span: Span) -> Self {
        Error::new(ErrorKind::Sema, message, span)
    }

    /// The failure category.
    pub fn kind(&self) -> &ErrorKind {
        &self.kind
    }

    /// The human-readable message (without the span).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Where in the source the error occurred.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at byte {}: {}",
            self.kind, self.span.start, self.message
        )
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_position() {
        let err = Error::parse("expected `;`", Span::new(10, 11));
        let text = err.to_string();
        assert!(text.contains("parse error"));
        assert!(text.contains("10"));
        assert!(text.contains("expected `;`"));
    }

    #[test]
    fn accessors() {
        let err = Error::sema("unknown variable `x`", Span::new(3, 4));
        assert_eq!(*err.kind(), ErrorKind::Sema);
        assert_eq!(err.message(), "unknown variable `x`");
        assert_eq!(err.span(), Span::new(3, 4));
    }
}
