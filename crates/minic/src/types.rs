//! The Mini-C type representation.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A Mini-C type.
///
/// The subset covers everything the PrivacyScope evaluation corpus uses:
/// scalars, pointers, fixed-size arrays and named structs.
///
/// # Examples
///
/// ```
/// use minic::types::Type;
/// let ty = Type::Ptr(Box::new(Type::Char));
/// assert!(ty.is_pointer());
/// assert_eq!(ty.to_string(), "char*");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// `void` — only valid as a return type or behind a pointer.
    Void,
    /// `char` (signed, 1 byte).
    Char,
    /// `int` (4 bytes).
    Int,
    /// `long` (8 bytes).
    Long,
    /// `unsigned int`.
    UInt,
    /// `unsigned long`.
    ULong,
    /// `float` (4 bytes).
    Float,
    /// `double` (8 bytes).
    Double,
    /// A pointer `T*`.
    Ptr(Box<Type>),
    /// A fixed-size array `T[n]`.
    Array(Box<Type>, usize),
    /// A named struct `struct S`.
    Struct(String),
}

impl Type {
    /// Whether this is an integer type (including `char`).
    pub fn is_integer(&self) -> bool {
        matches!(
            self,
            Type::Char | Type::Int | Type::Long | Type::UInt | Type::ULong
        )
    }

    /// Whether this is a floating-point type.
    pub fn is_float(&self) -> bool {
        matches!(self, Type::Float | Type::Double)
    }

    /// Whether this is an arithmetic (integer or floating) type.
    pub fn is_arithmetic(&self) -> bool {
        self.is_integer() || self.is_float()
    }

    /// Whether this is a pointer type.
    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// Whether this is an array type.
    pub fn is_array(&self) -> bool {
        matches!(self, Type::Array(..))
    }

    /// Whether values of this type fit in a machine scalar (arithmetic or
    /// pointer).
    pub fn is_scalar(&self) -> bool {
        self.is_arithmetic() || self.is_pointer()
    }

    /// The element type a pointer or array refers to.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(inner) => Some(inner),
            Type::Array(inner, _) => Some(inner),
            _ => None,
        }
    }

    /// Array-to-pointer decay: `T[n]` becomes `T*`; other types unchanged.
    pub fn decay(&self) -> Type {
        match self {
            Type::Array(inner, _) => Type::Ptr(inner.clone()),
            other => other.clone(),
        }
    }

    /// Size in bytes under the Mini-C data model (LP64).
    ///
    /// Struct sizes require layout information and are resolved by
    /// [`crate::sema`]; this returns `None` for structs and `void`.
    pub fn size(&self) -> Option<usize> {
        match self {
            Type::Void => None,
            Type::Char => Some(1),
            Type::Int | Type::UInt | Type::Float => Some(4),
            Type::Long | Type::ULong | Type::Double | Type::Ptr(_) => Some(8),
            Type::Array(inner, n) => inner.size().map(|s| s * n),
            Type::Struct(_) => None,
        }
    }

    /// The usual arithmetic conversion of C, simplified to the Mini-C model:
    /// any `double`/`float` operand promotes the result to `Double`; else any
    /// 8-byte integer promotes to `Long`; else `Int`.
    pub fn usual_arithmetic(&self, other: &Type) -> Type {
        if self.is_float() || other.is_float() {
            Type::Double
        } else if matches!(self, Type::Long | Type::ULong)
            || matches!(other, Type::Long | Type::ULong)
        {
            Type::Long
        } else {
            Type::Int
        }
    }

    /// Whether a value of type `from` can be assigned to this type without a
    /// cast (arithmetic conversions, matching pointers, array decay,
    /// `void*` compatibility).
    pub fn assignable_from(&self, from: &Type) -> bool {
        let from = from.decay();
        match (self, &from) {
            _ if *self == from => true,
            (a, b) if a.is_arithmetic() && b.is_arithmetic() => true,
            (Type::Ptr(a), Type::Ptr(b)) => {
                **a == **b || matches!(**a, Type::Void) || matches!(**b, Type::Void)
            }
            // Integer literals are allowed as null pointers; the checker is
            // deliberately permissive here (it cannot see the value).
            (Type::Ptr(_), b) if b.is_integer() => true,
            _ => false,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Char => write!(f, "char"),
            Type::Int => write!(f, "int"),
            Type::Long => write!(f, "long"),
            Type::UInt => write!(f, "unsigned int"),
            Type::ULong => write!(f, "unsigned long"),
            Type::Float => write!(f, "float"),
            Type::Double => write!(f, "double"),
            Type::Ptr(inner) => write!(f, "{inner}*"),
            Type::Array(inner, n) => write!(f, "{inner}[{n}]"),
            Type::Struct(name) => write!(f, "struct {name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Type::Char.is_integer());
        assert!(Type::Double.is_float());
        assert!(Type::Ptr(Box::new(Type::Int)).is_scalar());
        assert!(!Type::Struct("s".into()).is_scalar());
        assert!(!Type::Void.is_arithmetic());
    }

    #[test]
    fn decay_only_affects_arrays() {
        let arr = Type::Array(Box::new(Type::Int), 4);
        assert_eq!(arr.decay(), Type::Ptr(Box::new(Type::Int)));
        assert_eq!(Type::Int.decay(), Type::Int);
    }

    #[test]
    fn sizes_lp64() {
        assert_eq!(Type::Char.size(), Some(1));
        assert_eq!(Type::Int.size(), Some(4));
        assert_eq!(Type::Ptr(Box::new(Type::Void)).size(), Some(8));
        assert_eq!(Type::Array(Box::new(Type::Double), 3).size(), Some(24));
        assert_eq!(Type::Struct("s".into()).size(), None);
    }

    #[test]
    fn usual_arithmetic_promotions() {
        assert_eq!(Type::Int.usual_arithmetic(&Type::Double), Type::Double);
        assert_eq!(Type::Float.usual_arithmetic(&Type::Char), Type::Double);
        assert_eq!(Type::Long.usual_arithmetic(&Type::Int), Type::Long);
        assert_eq!(Type::Char.usual_arithmetic(&Type::Int), Type::Int);
    }

    #[test]
    fn assignability() {
        let int_ptr = Type::Ptr(Box::new(Type::Int));
        let void_ptr = Type::Ptr(Box::new(Type::Void));
        let int_arr = Type::Array(Box::new(Type::Int), 8);
        assert!(Type::Double.assignable_from(&Type::Int));
        assert!(int_ptr.assignable_from(&int_arr));
        assert!(int_ptr.assignable_from(&void_ptr));
        assert!(void_ptr.assignable_from(&int_ptr));
        assert!(!int_ptr.assignable_from(&Type::Ptr(Box::new(Type::Char))));
        assert!(!Type::Int.assignable_from(&Type::Struct("s".into())));
    }

    #[test]
    fn display() {
        assert_eq!(
            Type::Array(Box::new(Type::Ptr(Box::new(Type::Char))), 3).to_string(),
            "char*[3]"
        );
        assert_eq!(Type::Struct("point".into()).to_string(), "struct point");
    }
}
