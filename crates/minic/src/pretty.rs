//! Pretty-printer: renders an AST back to parseable Mini-C source.
//!
//! Expressions are fully parenthesized, so `parse(pretty(parse(src)))`
//! yields a structurally identical AST (modulo expression ids and spans) —
//! the round-trip property exercised by the test suite.

use std::fmt::Write as _;

use crate::ast::*;
use crate::types::Type;

/// Renders a whole translation unit.
pub fn unit(unit: &TranslationUnit) -> String {
    let mut out = String::new();
    for item in &unit.items {
        match item {
            Item::Struct(def) => {
                let _ = writeln!(out, "struct {} {{", def.name);
                for field in &def.fields {
                    let _ = writeln!(out, "    {};", declaration(&field.ty, &field.name));
                }
                let _ = writeln!(out, "}};");
            }
            Item::Global(decl) => {
                let _ = writeln!(out, "{};", var_decl(decl));
            }
            Item::Function(f) => {
                let params = f
                    .params
                    .iter()
                    .map(|p| declaration(&p.ty, &p.name))
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = write!(out, "{} {}({})", f.ret, f.name, params);
                match &f.body {
                    None => {
                        let _ = writeln!(out, ";");
                    }
                    Some(body) => {
                        let _ = writeln!(out, " {{");
                        for stmt in body {
                            stmt_into(stmt, 1, &mut out);
                        }
                        let _ = writeln!(out, "}}");
                    }
                }
            }
        }
    }
    out
}

/// Renders a C declaration of `name` with type `ty` (handles the inside-out
/// array syntax: `int xs[3]`, `char *argv[8]`).
pub fn declaration(ty: &Type, name: &str) -> String {
    match ty {
        Type::Array(inner, n) => {
            let inner_decl = declaration(inner, name);
            format!("{inner_decl}[{n}]")
        }
        Type::Ptr(inner) => declaration_ptr(inner, &format!("*{name}")),
        other => format!("{other} {name}"),
    }
}

fn declaration_ptr(ty: &Type, name: &str) -> String {
    match ty {
        Type::Ptr(inner) => declaration_ptr(inner, &format!("*{name}")),
        Type::Array(inner, n) => {
            // pointer-to-array needs parens; the subset never produces it,
            // but render something parseable anyway.
            format!("{} ({name})[{n}]", type_prefix(inner))
        }
        other => format!("{other} {name}"),
    }
}

fn type_prefix(ty: &Type) -> String {
    ty.to_string()
}

/// Renders a single statement at the given indent level.
pub fn stmt(stmt: &Stmt, indent: usize) -> String {
    let mut out = String::new();
    stmt_into(stmt, indent, &mut out);
    out
}

fn pad(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("    ");
    }
}

fn var_decl(decl: &VarDecl) -> String {
    let mut text = declaration(&decl.ty, &decl.name);
    if let Some(init) = &decl.init {
        text.push_str(" = ");
        text.push_str(&init_text(init));
    }
    text
}

fn init_text(init: &Init) -> String {
    match init {
        Init::Expr(e) => expr(e),
        Init::List(items) => {
            let inner = items.iter().map(init_text).collect::<Vec<_>>().join(", ");
            format!("{{{inner}}}")
        }
    }
}

fn stmt_into(s: &Stmt, indent: usize, out: &mut String) {
    match &s.kind {
        StmtKind::Decl(decl) => {
            pad(indent, out);
            let _ = writeln!(out, "{};", var_decl(decl));
        }
        StmtKind::Expr(None) => {
            pad(indent, out);
            out.push_str(";\n");
        }
        StmtKind::Expr(Some(e)) => {
            pad(indent, out);
            let _ = writeln!(out, "{};", expr(e));
        }
        StmtKind::Block(stmts) => {
            pad(indent, out);
            out.push_str("{\n");
            for inner in stmts {
                stmt_into(inner, indent + 1, out);
            }
            pad(indent, out);
            out.push_str("}\n");
        }
        StmtKind::If {
            cond,
            then_s,
            else_s,
        } => {
            pad(indent, out);
            let _ = writeln!(out, "if ({})", expr(cond));
            stmt_into(then_s, indent + 1, out);
            if let Some(else_s) = else_s {
                pad(indent, out);
                out.push_str("else\n");
                stmt_into(else_s, indent + 1, out);
            }
        }
        StmtKind::While { cond, body } => {
            pad(indent, out);
            let _ = writeln!(out, "while ({})", expr(cond));
            stmt_into(body, indent + 1, out);
        }
        StmtKind::DoWhile { body, cond } => {
            pad(indent, out);
            out.push_str("do\n");
            stmt_into(body, indent + 1, out);
            pad(indent, out);
            let _ = writeln!(out, "while ({});", expr(cond));
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            pad(indent, out);
            let init_text = match init.as_deref() {
                None => String::new(),
                Some(Stmt {
                    kind: StmtKind::Decl(decl),
                    ..
                }) => var_decl(decl),
                Some(Stmt {
                    kind: StmtKind::Expr(Some(e)),
                    ..
                }) => expr(e),
                Some(_) => String::new(),
            };
            let cond_text = cond.as_ref().map(expr).unwrap_or_default();
            let step_text = step.as_ref().map(expr).unwrap_or_default();
            let _ = writeln!(out, "for ({init_text}; {cond_text}; {step_text})");
            stmt_into(body, indent + 1, out);
        }
        StmtKind::Return(None) => {
            pad(indent, out);
            out.push_str("return;\n");
        }
        StmtKind::Return(Some(e)) => {
            pad(indent, out);
            let _ = writeln!(out, "return {};", expr(e));
        }
        StmtKind::Break => {
            pad(indent, out);
            out.push_str("break;\n");
        }
        StmtKind::Continue => {
            pad(indent, out);
            out.push_str("continue;\n");
        }
    }
}

/// Renders an expression, fully parenthesized.
pub fn expr(e: &Expr) -> String {
    match &e.kind {
        ExprKind::IntLit(v) => v.to_string(),
        ExprKind::FloatLit(v) => {
            if v.fract() == 0.0 && v.is_finite() {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
        ExprKind::CharLit(v) => v.to_string(),
        ExprKind::StrLit(s) => format!("{s:?}"),
        ExprKind::Ident(name) => name.clone(),
        ExprKind::Unary { op, expr: inner } => format!("({op}{})", expr(inner)),
        ExprKind::Deref(inner) => format!("(*{})", expr(inner)),
        ExprKind::AddrOf(inner) => format!("(&{})", expr(inner)),
        ExprKind::Binary { op, lhs, rhs } => {
            format!("({} {op} {})", expr(lhs), expr(rhs))
        }
        ExprKind::Assign { op, lhs, rhs } => match op {
            None => format!("({} = {})", expr(lhs), expr(rhs)),
            Some(op) => format!("({} {op}= {})", expr(lhs), expr(rhs)),
        },
        ExprKind::Ternary {
            cond,
            then_e,
            else_e,
        } => format!("({} ? {} : {})", expr(cond), expr(then_e), expr(else_e)),
        ExprKind::Call { callee, args } => {
            let args = args.iter().map(expr).collect::<Vec<_>>().join(", ");
            format!("{callee}({args})")
        }
        ExprKind::Index { base, index } => format!("{}[{}]", expr(base), expr(index)),
        ExprKind::Member { base, field, arrow } => {
            let sep = if *arrow { "->" } else { "." };
            format!("{}{sep}{field}", expr(base))
        }
        ExprKind::Cast { ty, expr: inner } => format!("(({ty})({}))", expr(inner)),
        ExprKind::SizeofType(ty) => format!("sizeof({ty})"),
        ExprKind::SizeofExpr(inner) => format!("sizeof({})", expr(inner)),
        ExprKind::IncDec { op, expr: inner } => match op {
            IncDecOp::PreInc => format!("(++{})", expr(inner)),
            IncDecOp::PreDec => format!("(--{})", expr(inner)),
            IncDecOp::PostInc => format!("({}++)", expr(inner)),
            IncDecOp::PostDec => format!("({}--)", expr(inner)),
        },
        ExprKind::Comma(lhs, rhs) => format!("({}, {})", expr(lhs), expr(rhs)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_tokens;

    fn reparse(src: &str) -> TranslationUnit {
        parse_tokens(src, lex(src).expect("lexes")).expect("parses")
    }

    /// Erase ids/spans/types so structural equality can be compared.
    fn fingerprint(unit: &TranslationUnit) -> String {
        // the pretty form itself is the canonical fingerprint
        super::unit(unit)
    }

    #[test]
    fn round_trip_function() {
        let src = "int add(int a, int b) { return a + b * 2; }";
        let once = fingerprint(&reparse(src));
        let twice = fingerprint(&reparse(&once));
        assert_eq!(once, twice);
    }

    #[test]
    fn round_trip_struct_and_globals() {
        let src = "struct p { int x; double ws[4]; };\nint g = 3;\nstruct p origin;";
        let once = fingerprint(&reparse(src));
        let twice = fingerprint(&reparse(&once));
        assert_eq!(once, twice);
    }

    #[test]
    fn round_trip_control_flow() {
        let src = "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { if (i % 2 == 0) s += i; else s -= i; } while (s < 0) s++; do s--; while (s > 10); return s; }";
        let once = fingerprint(&reparse(src));
        let twice = fingerprint(&reparse(&once));
        assert_eq!(once, twice);
    }

    #[test]
    fn round_trip_pointers_and_casts() {
        let src = "void f(char *buf, int n) { int *p = (int*)buf; p[0] = n; *(p + 1) = -n; }";
        let once = fingerprint(&reparse(src));
        let twice = fingerprint(&reparse(&once));
        assert_eq!(once, twice);
    }

    #[test]
    fn declaration_syntax() {
        use crate::types::Type;
        assert_eq!(declaration(&Type::Int, "x"), "int x");
        assert_eq!(
            declaration(&Type::Array(Box::new(Type::Int), 3), "xs"),
            "int xs[3]"
        );
        assert_eq!(
            declaration(&Type::Ptr(Box::new(Type::Char)), "s"),
            "char *s"
        );
        assert_eq!(
            declaration(
                &Type::Array(Box::new(Type::Ptr(Box::new(Type::Char))), 2),
                "argv"
            ),
            "char *argv[2]"
        );
    }
}
