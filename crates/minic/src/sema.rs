//! Symbol resolution and light type checking.
//!
//! [`check`] decorates every expression with its type, verifies that
//! identifiers resolve, that calls target known functions (declared in the
//! unit or in the [libc/libm/SGX builtin table](builtin_return_type)), and
//! enforces the basic shape rules of C (lvalues for assignment, pointers for
//! dereference, structs for member access, loops for `break`).

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::*;
use crate::error::Error;
use crate::span::Span;
use crate::types::Type;

/// Resolves and type-checks a parsed unit in place.
///
/// # Errors
///
/// Returns the first semantic violation found, with its source span.
pub fn check(unit: &mut TranslationUnit) -> Result<(), Error> {
    // Pass 1: collect struct definitions.
    let mut structs = BTreeMap::new();
    for item in &unit.items {
        if let Item::Struct(def) = item {
            if structs.insert(def.name.clone(), def.clone()).is_some() {
                return Err(Error::sema(
                    format!("duplicate struct `{}`", def.name),
                    def.span,
                ));
            }
        }
    }
    // Struct field types must refer to known structs and must not recurse
    // by value.
    for def in structs.values() {
        for field in &def.fields {
            validate_type(&field.ty, &structs, field.span)?;
        }
        struct_size_of(&def.name, &structs, &mut BTreeSet::new())
            .map_err(|msg| Error::sema(msg, def.span))?;
    }

    // Pass 2: collect function signatures and globals.
    let mut functions: BTreeMap<String, (Type, Vec<Type>, bool)> = BTreeMap::new();
    let mut globals: BTreeMap<String, Type> = BTreeMap::new();
    for item in &unit.items {
        match item {
            Item::Function(f) => {
                validate_type(&f.ret, &structs, f.span)?;
                for p in &f.params {
                    validate_type(&p.ty, &structs, p.span)?;
                }
                let sig = (
                    f.ret.clone(),
                    f.params.iter().map(|p| p.ty.clone()).collect::<Vec<_>>(),
                    f.body.is_some(),
                );
                if let Some((ret, params, defined)) = functions.get(&f.name) {
                    if *ret != sig.0 || *params != sig.1 {
                        return Err(Error::sema(
                            format!("conflicting declarations of `{}`", f.name),
                            f.span,
                        ));
                    }
                    if *defined && f.body.is_some() {
                        return Err(Error::sema(
                            format!("duplicate definition of `{}`", f.name),
                            f.span,
                        ));
                    }
                }
                let entry = functions.entry(f.name.clone()).or_insert(sig.clone());
                entry.2 |= sig.2;
            }
            Item::Global(decl) => {
                validate_type(&decl.ty, &structs, decl.span)?;
                if globals.insert(decl.name.clone(), decl.ty.clone()).is_some() {
                    return Err(Error::sema(
                        format!("duplicate global `{}`", decl.name),
                        decl.span,
                    ));
                }
            }
            Item::Struct(_) => {}
        }
    }

    // Pass 3: check bodies.
    let ctx = UnitContext {
        structs: &structs,
        functions: &functions,
        globals: &globals,
    };
    let mut items = std::mem::take(&mut unit.items);
    let mut result = Ok(());
    'outer: for item in &mut items {
        match item {
            Item::Function(f) => {
                if let Err(err) = check_function(f, &ctx) {
                    result = Err(err);
                    break 'outer;
                }
            }
            Item::Global(decl) => {
                if let Some(init) = &mut decl.init {
                    let mut scope = Scope::new(&ctx, &Type::Void);
                    if let Err(err) = check_init(init, &decl.ty, &mut scope) {
                        result = Err(err);
                        break 'outer;
                    }
                }
            }
            Item::Struct(_) => {}
        }
    }
    unit.items = items;
    unit.structs = structs;
    result
}

/// Returns the return type of a known external (libc / libm / SGX SDK)
/// function, or `None` if the name is not a builtin.
///
/// The Mini-C corpus may call these without declaring prototypes, matching
/// how the paper's ported ML code calls into the C runtime and the SGX SDK.
pub fn builtin_return_type(name: &str) -> Option<Type> {
    let ty = match name {
        // libm
        "sqrt" | "fabs" | "exp" | "log" | "pow" | "floor" | "ceil" | "sin" | "cos" => Type::Double,
        "sqrtf" | "fabsf" => Type::Float,
        // libc
        "abs" | "rand" | "printf" | "puts" | "putchar" | "atoi" => Type::Int,
        "strlen" => Type::ULong,
        "malloc" | "calloc" | "memcpy" | "memset" => Type::Ptr(Box::new(Type::Void)),
        "free" | "srand" | "qsort" => Type::Void,
        "atof" => Type::Double,
        // SGX SDK / IPP-style crypto, used by enclave code
        "sgx_read_rand" | "sgx_seal_data" | "sgx_unseal_data" => Type::Int,
        "ipp_aes_decrypt"
        | "ipp_aes_encrypt"
        | "sgx_rijndael128GCM_decrypt"
        | "sgx_rijndael128GCM_encrypt" => Type::Int,
        _ => return None,
    };
    Some(ty)
}

/// Whether a builtin takes a variable/unchecked argument list.
fn builtin_is_variadic(name: &str) -> bool {
    matches!(
        name,
        "printf"
            | "memcpy"
            | "memset"
            | "qsort"
            | "sgx_read_rand"
            | "ipp_aes_decrypt"
            | "ipp_aes_encrypt"
            | "sgx_rijndael128GCM_decrypt"
            | "sgx_rijndael128GCM_encrypt"
            | "sgx_seal_data"
            | "sgx_unseal_data"
            | "calloc"
            | "malloc"
            | "free"
            | "strlen"
            | "atoi"
            | "atof"
            | "puts"
    )
}

fn validate_type(
    ty: &Type,
    structs: &BTreeMap<String, StructDef>,
    span: Span,
) -> Result<(), Error> {
    match ty {
        Type::Struct(name) => {
            if structs.contains_key(name) {
                Ok(())
            } else {
                Err(Error::sema(format!("unknown struct `{name}`"), span))
            }
        }
        Type::Ptr(inner) => {
            // Pointers to not-yet-known structs are fine in C, but the
            // subset requires full definitions up front.
            validate_type(inner, structs, span)
        }
        Type::Array(inner, n) => {
            if *n == 0 {
                return Err(Error::sema("zero-length array", span));
            }
            if matches!(**inner, Type::Void) {
                return Err(Error::sema("array of void", span));
            }
            validate_type(inner, structs, span)
        }
        _ => Ok(()),
    }
}

/// Packed size of a struct in bytes (no padding; Mini-C data model).
pub fn struct_size(unit: &TranslationUnit, name: &str) -> Option<usize> {
    struct_size_of(name, &unit.structs, &mut BTreeSet::new()).ok()
}

fn struct_size_of(
    name: &str,
    structs: &BTreeMap<String, StructDef>,
    visiting: &mut BTreeSet<String>,
) -> Result<usize, String> {
    if !visiting.insert(name.to_string()) {
        return Err(format!("struct `{name}` recursively contains itself"));
    }
    let def = structs
        .get(name)
        .ok_or_else(|| format!("unknown struct `{name}`"))?;
    let mut size = 0;
    for field in &def.fields {
        size += type_size(&field.ty, structs, visiting)?;
    }
    visiting.remove(name);
    Ok(size)
}

fn type_size(
    ty: &Type,
    structs: &BTreeMap<String, StructDef>,
    visiting: &mut BTreeSet<String>,
) -> Result<usize, String> {
    match ty {
        Type::Struct(name) => struct_size_of(name, structs, visiting),
        Type::Array(inner, n) => Ok(type_size(inner, structs, visiting)? * n),
        other => other
            .size()
            .ok_or_else(|| format!("type `{other}` has no size")),
    }
}

struct UnitContext<'a> {
    structs: &'a BTreeMap<String, StructDef>,
    functions: &'a BTreeMap<String, (Type, Vec<Type>, bool)>,
    globals: &'a BTreeMap<String, Type>,
}

struct Scope<'a> {
    ctx: &'a UnitContext<'a>,
    locals: Vec<BTreeMap<String, Type>>,
    ret: &'a Type,
    loop_depth: usize,
}

impl<'a> Scope<'a> {
    fn new(ctx: &'a UnitContext<'a>, ret: &'a Type) -> Self {
        Scope {
            ctx,
            locals: vec![BTreeMap::new()],
            ret,
            loop_depth: 0,
        }
    }

    fn push(&mut self) {
        self.locals.push(BTreeMap::new());
    }

    fn pop(&mut self) {
        self.locals.pop();
    }

    fn declare(&mut self, name: &str, ty: Type, span: Span) -> Result<(), Error> {
        let top = self.locals.last_mut().expect("scope stack never empty");
        if top.insert(name.to_string(), ty).is_some() {
            return Err(Error::sema(
                format!("`{name}` is already declared in this scope"),
                span,
            ));
        }
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<&Type> {
        for frame in self.locals.iter().rev() {
            if let Some(ty) = frame.get(name) {
                return Some(ty);
            }
        }
        self.ctx.globals.get(name)
    }
}

fn check_function(f: &mut Function, ctx: &UnitContext<'_>) -> Result<(), Error> {
    let Some(body) = &mut f.body else {
        return Ok(());
    };
    let mut scope = Scope::new(ctx, &f.ret);
    for p in &f.params {
        scope.declare(&p.name, p.ty.clone(), p.span)?;
    }
    for stmt in body {
        check_stmt(stmt, &mut scope)?;
    }
    Ok(())
}

fn check_stmt(stmt: &mut Stmt, scope: &mut Scope<'_>) -> Result<(), Error> {
    match &mut stmt.kind {
        StmtKind::Decl(decl) => {
            validate_type(&decl.ty, scope.ctx.structs, decl.span)?;
            if matches!(decl.ty, Type::Void) {
                return Err(Error::sema("cannot declare a void variable", decl.span));
            }
            if let Some(init) = &mut decl.init {
                check_init(init, &decl.ty, scope)?;
            }
            scope.declare(&decl.name, decl.ty.clone(), decl.span)
        }
        StmtKind::Expr(None) => Ok(()),
        StmtKind::Expr(Some(expr)) => check_expr(expr, scope).map(drop),
        StmtKind::Block(stmts) => {
            scope.push();
            for s in stmts {
                if let Err(err) = check_stmt(s, scope) {
                    scope.pop();
                    return Err(err);
                }
            }
            scope.pop();
            Ok(())
        }
        StmtKind::If {
            cond,
            then_s,
            else_s,
        } => {
            let cond_ty = check_expr(cond, scope)?;
            require_scalar(&cond_ty, cond.span, "if condition")?;
            check_stmt(then_s, scope)?;
            if let Some(else_s) = else_s {
                check_stmt(else_s, scope)?;
            }
            Ok(())
        }
        StmtKind::While { cond, body } => {
            let cond_ty = check_expr(cond, scope)?;
            require_scalar(&cond_ty, cond.span, "while condition")?;
            scope.loop_depth += 1;
            let result = check_stmt(body, scope);
            scope.loop_depth -= 1;
            result
        }
        StmtKind::DoWhile { body, cond } => {
            scope.loop_depth += 1;
            let result = check_stmt(body, scope);
            scope.loop_depth -= 1;
            result?;
            let cond_ty = check_expr(cond, scope)?;
            require_scalar(&cond_ty, cond.span, "do-while condition")
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            scope.push();
            let result = (|| {
                if let Some(init) = init {
                    check_stmt(init, scope)?;
                }
                if let Some(cond) = cond {
                    let cond_ty = check_expr(cond, scope)?;
                    require_scalar(&cond_ty, cond.span, "for condition")?;
                }
                if let Some(step) = step {
                    check_expr(step, scope)?;
                }
                scope.loop_depth += 1;
                let r = check_stmt(body, scope);
                scope.loop_depth -= 1;
                r
            })();
            scope.pop();
            result
        }
        StmtKind::Return(value) => match (value, scope.ret) {
            (None, Type::Void) => Ok(()),
            (None, ret) => Err(Error::sema(
                format!("function returning `{ret}` needs a return value"),
                stmt.span,
            )),
            (Some(expr), ret) => {
                let ty = check_expr(expr, scope)?;
                if matches!(ret, Type::Void) {
                    return Err(Error::sema(
                        "void function cannot return a value",
                        expr.span,
                    ));
                }
                if !ret.assignable_from(&ty) {
                    return Err(Error::sema(
                        format!("cannot return `{ty}` from a function returning `{ret}`"),
                        expr.span,
                    ));
                }
                Ok(())
            }
        },
        StmtKind::Break | StmtKind::Continue => {
            if scope.loop_depth == 0 {
                Err(Error::sema("`break`/`continue` outside a loop", stmt.span))
            } else {
                Ok(())
            }
        }
    }
}

fn check_init(init: &mut Init, target: &Type, scope: &mut Scope<'_>) -> Result<(), Error> {
    match (init, target) {
        (Init::Expr(expr), _) => {
            let ty = check_expr(expr, scope)?;
            if !target.assignable_from(&ty) {
                return Err(Error::sema(
                    format!("cannot initialize `{target}` from `{ty}`"),
                    expr.span,
                ));
            }
            Ok(())
        }
        (Init::List(items), Type::Array(elem, len)) => {
            if items.len() > *len {
                return Err(Error::sema(
                    format!("too many initializers: {} for array of {len}", items.len()),
                    Span::default(),
                ));
            }
            for item in items {
                check_init(item, elem, scope)?;
            }
            Ok(())
        }
        (Init::List(items), Type::Struct(name)) => {
            let def =
                scope.ctx.structs.get(name).cloned().ok_or_else(|| {
                    Error::sema(format!("unknown struct `{name}`"), Span::default())
                })?;
            if items.len() > def.fields.len() {
                return Err(Error::sema(
                    format!("too many initializers for struct `{name}`"),
                    Span::default(),
                ));
            }
            for (item, field) in items.iter_mut().zip(&def.fields) {
                check_init(item, &field.ty, scope)?;
            }
            Ok(())
        }
        (Init::List(_), other) => Err(Error::sema(
            format!("brace initializer cannot initialize `{other}`"),
            Span::default(),
        )),
    }
}

fn require_scalar(ty: &Type, span: Span, what: &str) -> Result<(), Error> {
    if ty.decay().is_scalar() {
        Ok(())
    } else {
        Err(Error::sema(
            format!("{what} must be scalar, got `{ty}`"),
            span,
        ))
    }
}

fn require_lvalue(expr: &Expr, what: &str) -> Result<(), Error> {
    if expr.is_lvalue() {
        Ok(())
    } else {
        Err(Error::sema(format!("{what} requires an lvalue"), expr.span))
    }
}

fn check_expr(expr: &mut Expr, scope: &mut Scope<'_>) -> Result<Type, Error> {
    let ty = infer_expr(expr, scope)?;
    expr.ty = Some(ty.clone());
    Ok(ty)
}

fn infer_expr(expr: &mut Expr, scope: &mut Scope<'_>) -> Result<Type, Error> {
    let span = expr.span;
    match &mut expr.kind {
        ExprKind::IntLit(_) => Ok(Type::Int),
        ExprKind::FloatLit(_) => Ok(Type::Double),
        ExprKind::CharLit(_) => Ok(Type::Int),
        ExprKind::StrLit(_) => Ok(Type::Ptr(Box::new(Type::Char))),
        ExprKind::Ident(name) => scope
            .lookup(name)
            .cloned()
            .ok_or_else(|| Error::sema(format!("unknown variable `{name}`"), span)),
        ExprKind::Unary { op, expr: inner } => {
            let ty = check_expr(inner, scope)?.decay();
            match op {
                UnOp::Neg | UnOp::Plus => {
                    if !ty.is_arithmetic() {
                        return Err(Error::sema(
                            format!("unary `{op}` needs an arithmetic operand, got `{ty}`"),
                            span,
                        ));
                    }
                    Ok(ty.usual_arithmetic(&Type::Int))
                }
                UnOp::Not => {
                    require_scalar(&ty, span, "operand of `!`")?;
                    Ok(Type::Int)
                }
                UnOp::BitNot => {
                    if !ty.is_integer() {
                        return Err(Error::sema(
                            format!("`~` needs an integer operand, got `{ty}`"),
                            span,
                        ));
                    }
                    Ok(ty.usual_arithmetic(&Type::Int))
                }
            }
        }
        ExprKind::Deref(inner) => {
            let ty = check_expr(inner, scope)?.decay();
            match ty {
                Type::Ptr(pointee) if !matches!(*pointee, Type::Void) => Ok(*pointee),
                Type::Ptr(_) => Err(Error::sema("cannot dereference `void*`", span)),
                other => Err(Error::sema(
                    format!("cannot dereference non-pointer `{other}`"),
                    span,
                )),
            }
        }
        ExprKind::AddrOf(inner) => {
            let ty = check_expr(inner, scope)?;
            require_lvalue(inner, "`&`")?;
            Ok(Type::Ptr(Box::new(ty)))
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let op = *op;
            let lt = check_expr(lhs, scope)?.decay();
            let rt = check_expr(rhs, scope)?.decay();
            infer_binary(op, &lt, &rt, span)
        }
        ExprKind::Assign { op, lhs, rhs } => {
            let op = *op;
            let lt = check_expr(lhs, scope)?;
            require_lvalue(lhs, "assignment")?;
            if lt.is_array() {
                return Err(Error::sema("cannot assign to an array", span));
            }
            let rt = check_expr(rhs, scope)?;
            match op {
                None => {
                    if !lt.assignable_from(&rt) {
                        return Err(Error::sema(format!("cannot assign `{rt}` to `{lt}`"), span));
                    }
                }
                Some(binop) => {
                    let result = infer_binary(binop, &lt.decay(), &rt.decay(), span)?;
                    if !lt.assignable_from(&result) {
                        return Err(Error::sema(
                            format!("cannot assign `{result}` to `{lt}`"),
                            span,
                        ));
                    }
                }
            }
            Ok(lt)
        }
        ExprKind::Ternary {
            cond,
            then_e,
            else_e,
        } => {
            let ct = check_expr(cond, scope)?;
            require_scalar(&ct, cond.span, "ternary condition")?;
            let tt = check_expr(then_e, scope)?.decay();
            let et = check_expr(else_e, scope)?.decay();
            if tt == et {
                Ok(tt)
            } else if tt.is_arithmetic() && et.is_arithmetic() {
                Ok(tt.usual_arithmetic(&et))
            } else if tt.is_pointer() && et.is_pointer() {
                Ok(tt)
            } else {
                Err(Error::sema(
                    format!("incompatible ternary arms `{tt}` and `{et}`"),
                    span,
                ))
            }
        }
        ExprKind::Call { callee, args } => {
            let callee = callee.clone();
            let mut arg_types = Vec::with_capacity(args.len());
            for arg in args.iter_mut() {
                arg_types.push(check_expr(arg, scope)?);
            }
            if let Some((ret, params, _)) = scope.ctx.functions.get(&callee) {
                if params.len() != arg_types.len() {
                    return Err(Error::sema(
                        format!(
                            "`{callee}` expects {} argument(s), got {}",
                            params.len(),
                            arg_types.len()
                        ),
                        span,
                    ));
                }
                for (param, arg) in params.iter().zip(&arg_types) {
                    if !param.assignable_from(arg) {
                        return Err(Error::sema(
                            format!("cannot pass `{arg}` as `{param}` to `{callee}`"),
                            span,
                        ));
                    }
                }
                Ok(ret.clone())
            } else if let Some(ret) = builtin_return_type(&callee) {
                if !builtin_is_variadic(&callee) && callee != "printf" {
                    // fixed-arity builtins: math functions take one arg,
                    // `pow` takes two, `rand` takes none.
                    let expected = match callee.as_str() {
                        "pow" => 2,
                        "rand" => 0,
                        _ => 1,
                    };
                    if arg_types.len() != expected {
                        return Err(Error::sema(
                            format!(
                                "`{callee}` expects {expected} argument(s), got {}",
                                arg_types.len()
                            ),
                            span,
                        ));
                    }
                }
                Ok(ret)
            } else {
                Err(Error::sema(
                    format!("call to undeclared function `{callee}`"),
                    span,
                ))
            }
        }
        ExprKind::Index { base, index } => {
            let bt = check_expr(base, scope)?.decay();
            let it = check_expr(index, scope)?.decay();
            if !it.is_integer() {
                return Err(Error::sema(
                    format!("array index must be an integer, got `{it}`"),
                    index.span,
                ));
            }
            match bt {
                Type::Ptr(pointee) if !matches!(*pointee, Type::Void) => Ok(*pointee),
                other => Err(Error::sema(
                    format!("cannot index non-pointer `{other}`"),
                    span,
                )),
            }
        }
        ExprKind::Member { base, field, arrow } => {
            let field = field.clone();
            let arrow = *arrow;
            let bt = check_expr(base, scope)?;
            let struct_name = match (&bt, arrow) {
                (Type::Struct(name), false) => name.clone(),
                (Type::Ptr(inner), true) => match &**inner {
                    Type::Struct(name) => name.clone(),
                    other => {
                        return Err(Error::sema(
                            format!("`->` on pointer to non-struct `{other}`"),
                            span,
                        ))
                    }
                },
                (other, false) => {
                    return Err(Error::sema(format!("`.` on non-struct `{other}`"), span))
                }
                (other, true) => {
                    return Err(Error::sema(format!("`->` on non-pointer `{other}`"), span))
                }
            };
            let def = scope
                .ctx
                .structs
                .get(&struct_name)
                .ok_or_else(|| Error::sema(format!("unknown struct `{struct_name}`"), span))?;
            def.field(&field).map(|f| f.ty.clone()).ok_or_else(|| {
                Error::sema(
                    format!("struct `{struct_name}` has no field `{field}`"),
                    span,
                )
            })
        }
        ExprKind::Cast { ty, expr: inner } => {
            let ty = ty.clone();
            let it = check_expr(inner, scope)?.decay();
            let ok = (ty.is_scalar() && it.is_scalar()) || matches!(ty, Type::Void);
            if !ok {
                return Err(Error::sema(
                    format!("invalid cast from `{it}` to `{ty}`"),
                    span,
                ));
            }
            Ok(ty)
        }
        ExprKind::SizeofType(ty) => {
            validate_type(ty, scope.ctx.structs, span)?;
            Ok(Type::ULong)
        }
        ExprKind::SizeofExpr(inner) => {
            check_expr(inner, scope)?;
            Ok(Type::ULong)
        }
        ExprKind::IncDec { expr: inner, .. } => {
            let ty = check_expr(inner, scope)?;
            require_lvalue(inner, "increment/decrement")?;
            if !ty.is_scalar() {
                return Err(Error::sema(format!("cannot increment `{ty}`"), span));
            }
            Ok(ty)
        }
        ExprKind::Comma(lhs, rhs) => {
            check_expr(lhs, scope)?;
            check_expr(rhs, scope)
        }
    }
}

fn infer_binary(op: BinOp, lt: &Type, rt: &Type, span: Span) -> Result<Type, Error> {
    if op.is_logical() {
        require_scalar(lt, span, "logical operand")?;
        require_scalar(rt, span, "logical operand")?;
        return Ok(Type::Int);
    }
    if op.is_comparison() {
        let compatible = (lt.is_arithmetic() && rt.is_arithmetic())
            || (lt.is_pointer() && rt.is_pointer())
            || (lt.is_pointer() && rt.is_integer())
            || (lt.is_integer() && rt.is_pointer());
        if !compatible {
            return Err(Error::sema(
                format!("cannot compare `{lt}` with `{rt}`"),
                span,
            ));
        }
        return Ok(Type::Int);
    }
    match op {
        BinOp::Add => match (lt.is_pointer(), rt.is_pointer()) {
            (true, false) if rt.is_integer() => Ok(lt.clone()),
            (false, true) if lt.is_integer() => Ok(rt.clone()),
            (false, false) if lt.is_arithmetic() && rt.is_arithmetic() => {
                Ok(lt.usual_arithmetic(rt))
            }
            _ => Err(Error::sema(
                format!("invalid operands to `+`: `{lt}` and `{rt}`"),
                span,
            )),
        },
        BinOp::Sub => match (lt.is_pointer(), rt.is_pointer()) {
            (true, true) => Ok(Type::Long),
            (true, false) if rt.is_integer() => Ok(lt.clone()),
            (false, false) if lt.is_arithmetic() && rt.is_arithmetic() => {
                Ok(lt.usual_arithmetic(rt))
            }
            _ => Err(Error::sema(
                format!("invalid operands to `-`: `{lt}` and `{rt}`"),
                span,
            )),
        },
        BinOp::Mul | BinOp::Div => {
            if lt.is_arithmetic() && rt.is_arithmetic() {
                Ok(lt.usual_arithmetic(rt))
            } else {
                Err(Error::sema(
                    format!("invalid operands to `{op}`: `{lt}` and `{rt}`"),
                    span,
                ))
            }
        }
        BinOp::Rem | BinOp::Shl | BinOp::Shr | BinOp::BitAnd | BinOp::BitXor | BinOp::BitOr => {
            if lt.is_integer() && rt.is_integer() {
                Ok(lt.usual_arithmetic(rt))
            } else {
                Err(Error::sema(
                    format!("`{op}` needs integer operands, got `{lt}` and `{rt}`"),
                    span,
                ))
            }
        }
        _ => unreachable!("comparison/logical handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn parse_err(src: &str) -> Error {
        match parse(src) {
            Ok(_) => panic!("expected semantic error for {src:?}"),
            Err(err) => err,
        }
    }

    #[test]
    fn types_are_annotated() {
        let unit = parse("double f(int a, double b) { return a + b; }").unwrap();
        let f = unit.function("f").unwrap();
        let StmtKind::Return(Some(expr)) = &f.body.as_ref().unwrap()[0].kind else {
            panic!();
        };
        assert_eq!(expr.ty, Some(Type::Double));
    }

    #[test]
    fn unknown_variable_rejected() {
        let err = parse_err("int f() { return zz; }");
        assert!(err.to_string().contains("unknown variable"));
    }

    #[test]
    fn unknown_function_rejected() {
        let err = parse_err("int f() { return mystery(); }");
        assert!(err.to_string().contains("undeclared function"));
    }

    #[test]
    fn builtins_are_known() {
        let unit = parse("double f(double x) { return sqrt(x) + fabs(x); }").unwrap();
        assert!(unit.function("f").is_some());
    }

    #[test]
    fn prototype_enables_call() {
        let unit = parse("int helper(int x);\nint f() { return helper(3); }").unwrap();
        assert!(unit.function("f").is_some());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = parse_err("int g(int a) { return a; }\nint f() { return g(1, 2); }");
        assert!(err.to_string().contains("expects 1 argument"));
    }

    #[test]
    fn duplicate_local_rejected() {
        let err = parse_err("void f() { int x; int x; }");
        assert!(err.to_string().contains("already declared"));
    }

    #[test]
    fn shadowing_in_inner_scope_allowed() {
        assert!(parse("void f() { int x = 1; { int x = 2; } }").is_ok());
    }

    #[test]
    fn break_outside_loop_rejected() {
        let err = parse_err("void f() { break; }");
        assert!(err.to_string().contains("outside a loop"));
    }

    #[test]
    fn assignment_to_rvalue_rejected() {
        let err = parse_err("void f() { 3 = 4; }");
        assert!(err.to_string().contains("lvalue"));
    }

    #[test]
    fn deref_of_non_pointer_rejected() {
        let err = parse_err("void f(int x) { *x = 1; }");
        assert!(err.to_string().contains("dereference non-pointer"));
    }

    #[test]
    fn member_access_checked() {
        let err = parse_err("struct p { int x; };\nint f(struct p q) { return q.y; }");
        assert!(err.to_string().contains("no field `y`"));
    }

    #[test]
    fn arrow_on_value_rejected() {
        let err = parse_err("struct p { int x; };\nint f(struct p q) { return q->x; }");
        assert!(err.to_string().contains("`->` on non-pointer"));
    }

    #[test]
    fn void_variable_rejected() {
        let err = parse_err("void f() { void v; }");
        assert!(err.to_string().contains("void variable"));
    }

    #[test]
    fn recursive_struct_by_value_rejected() {
        let err = parse_err("struct n { struct n next; };");
        assert!(err.to_string().contains("recursively"));
    }

    #[test]
    fn pointer_to_own_struct_allowed() {
        assert!(parse("struct n { int v; struct n *next; };").is_ok());
    }

    #[test]
    fn return_type_checked() {
        let err = parse_err("struct p { int x; };\nint f(struct p q) { return q; }");
        assert!(err.to_string().contains("cannot return"));
    }

    #[test]
    fn missing_return_value_rejected() {
        let err = parse_err("int f() { return; }");
        assert!(err.to_string().contains("needs a return value"));
    }

    #[test]
    fn struct_size_is_packed_sum() {
        let unit =
            parse("struct p { int x; double y; char c; };\nstruct q { struct p a[2]; };").unwrap();
        assert_eq!(struct_size(&unit, "p"), Some(13));
        assert_eq!(struct_size(&unit, "q"), Some(26));
        assert_eq!(struct_size(&unit, "zz"), None);
    }

    #[test]
    fn conflicting_prototype_rejected() {
        let err = parse_err("int f(int a);\ndouble f(int a) { return 0.0; }");
        assert!(err.to_string().contains("conflicting"));
    }

    #[test]
    fn duplicate_definition_rejected() {
        let err = parse_err("int f() { return 0; }\nint f() { return 1; }");
        assert!(err.to_string().contains("duplicate definition"));
    }

    #[test]
    fn array_initializer_length_checked() {
        let err = parse_err("void f() { int xs[2] = {1, 2, 3}; }");
        assert!(err.to_string().contains("too many initializers"));
    }

    #[test]
    fn pointer_arithmetic_types() {
        let unit = parse("long f(int *p, int *q) { return q - p; }").unwrap();
        let f = unit.function("f").unwrap();
        let StmtKind::Return(Some(expr)) = &f.body.as_ref().unwrap()[0].kind else {
            panic!();
        };
        assert_eq!(expr.ty, Some(Type::Long));
    }

    #[test]
    fn comparisons_yield_int() {
        let unit = parse("int f(double a, double b) { return a < b; }").unwrap();
        let f = unit.function("f").unwrap();
        let StmtKind::Return(Some(expr)) = &f.body.as_ref().unwrap()[0].kind else {
            panic!();
        };
        assert_eq!(expr.ty, Some(Type::Int));
    }
}
