//! Recursive-descent parser for Mini-C.

use crate::ast::*;
use crate::error::Error;
use crate::span::Span;
use crate::token::{Keyword, Punct, Token, TokenKind};
use crate::types::Type;

/// Parses a token stream (as produced by [`crate::lexer::lex`]) into an
/// unresolved [`TranslationUnit`].
///
/// Symbol resolution and type checking are performed separately by
/// [`crate::sema::check`]; most callers should use [`crate::parse`] which
/// runs the whole pipeline.
///
/// # Errors
///
/// Returns [`Error`] with [`crate::error::ErrorKind::Parse`] on syntax
/// violations.
pub fn parse_tokens(source: &str, tokens: Vec<Token>) -> Result<TranslationUnit, Error> {
    let mut parser = Parser {
        source,
        tokens,
        pos: 0,
        next_expr_id: 0,
    };
    parser.translation_unit()
}

struct Parser<'src> {
    #[allow(dead_code)]
    source: &'src str,
    tokens: Vec<Token>,
    pos: usize,
    next_expr_id: u32,
}

impl<'src> Parser<'src> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, offset: usize) -> &TokenKind {
        let idx = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1).min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let idx = self.pos.min(self.tokens.len() - 1);
        let kind = self.tokens[idx].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        kind
    }

    fn eat_punct(&mut self, punct: Punct) -> bool {
        if *self.peek() == TokenKind::Punct(punct) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if *self.peek() == TokenKind::Keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, punct: Punct) -> Result<(), Error> {
        if self.eat_punct(punct) {
            Ok(())
        } else {
            Err(Error::parse(
                format!("expected `{punct}`, found {}", self.peek()),
                self.span(),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), Error> {
        let span = self.span();
        match self.bump() {
            TokenKind::Ident(name) => Ok((name, span)),
            other => Err(Error::parse(
                format!("expected identifier, found {other}"),
                span,
            )),
        }
    }

    fn fresh_id(&mut self) -> ExprId {
        let id = ExprId(self.next_expr_id);
        self.next_expr_id += 1;
        id
    }

    fn mk(&mut self, kind: ExprKind, span: Span) -> Expr {
        Expr {
            id: self.fresh_id(),
            kind,
            span,
            ty: None,
        }
    }

    // ---- types ----------------------------------------------------------

    fn at_type_start(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Keyword(
                Keyword::Void
                    | Keyword::Char
                    | Keyword::Int
                    | Keyword::Long
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::Unsigned
                    | Keyword::Signed
                    | Keyword::Struct
                    | Keyword::Const
                    | Keyword::Static
            )
        )
    }

    /// Parses a type specifier: qualifiers + base type keywords.
    fn type_specifier(&mut self) -> Result<Type, Error> {
        while self.eat_keyword(Keyword::Const) || self.eat_keyword(Keyword::Static) {}
        let span = self.span();
        let base = match self.bump() {
            TokenKind::Keyword(Keyword::Void) => Type::Void,
            TokenKind::Keyword(Keyword::Char) => Type::Char,
            TokenKind::Keyword(Keyword::Int) => Type::Int,
            TokenKind::Keyword(Keyword::Float) => Type::Float,
            TokenKind::Keyword(Keyword::Double) => Type::Double,
            TokenKind::Keyword(Keyword::Long) => {
                // `long`, `long long`, `long int`, `long double`
                if self.eat_keyword(Keyword::Long) {
                    let _ = self.eat_keyword(Keyword::Int);
                    Type::Long
                } else if self.eat_keyword(Keyword::Double) {
                    Type::Double
                } else {
                    let _ = self.eat_keyword(Keyword::Int);
                    Type::Long
                }
            }
            TokenKind::Keyword(Keyword::Signed) => {
                if self.eat_keyword(Keyword::Char) {
                    Type::Char
                } else if self.eat_keyword(Keyword::Long) {
                    let _ = self.eat_keyword(Keyword::Long);
                    let _ = self.eat_keyword(Keyword::Int);
                    Type::Long
                } else {
                    let _ = self.eat_keyword(Keyword::Int);
                    Type::Int
                }
            }
            TokenKind::Keyword(Keyword::Unsigned) => {
                if self.eat_keyword(Keyword::Char) {
                    Type::Char
                } else if self.eat_keyword(Keyword::Long) {
                    let _ = self.eat_keyword(Keyword::Long);
                    let _ = self.eat_keyword(Keyword::Int);
                    Type::ULong
                } else {
                    let _ = self.eat_keyword(Keyword::Int);
                    Type::UInt
                }
            }
            TokenKind::Keyword(Keyword::Struct) => {
                let (name, _) = self.expect_ident()?;
                Type::Struct(name)
            }
            other => {
                return Err(Error::parse(
                    format!("expected a type, found {other}"),
                    span,
                ))
            }
        };
        // `const` may also follow the base type (`int const`).
        while self.eat_keyword(Keyword::Const) {}
        Ok(base)
    }

    /// Parses the pointer stars of a declarator.
    fn pointer_suffix(&mut self, mut ty: Type) -> Type {
        while self.eat_punct(Punct::Star) {
            while self.eat_keyword(Keyword::Const) {}
            ty = Type::Ptr(Box::new(ty));
        }
        ty
    }

    /// Parses a full declarator: stars, name, array suffixes.
    fn declarator(&mut self, base: Type) -> Result<(String, Type, Span), Error> {
        let ty = self.pointer_suffix(base);
        let (name, span) = self.expect_ident()?;
        let ty = self.array_suffix(ty)?;
        Ok((name, ty, span))
    }

    /// Parses trailing `[N]` suffixes, outermost dimension first.
    fn array_suffix(&mut self, ty: Type) -> Result<Type, Error> {
        if !self.eat_punct(Punct::LBracket) {
            return Ok(ty);
        }
        let span = self.span();
        let len = match self.bump() {
            TokenKind::IntLit(n) if n >= 0 => n as usize,
            TokenKind::Punct(Punct::RBracket) => {
                // `T x[]` — unsized arrays decay to pointers.
                let inner = self.array_suffix(ty)?;
                return Ok(Type::Ptr(Box::new(inner)));
            }
            other => {
                return Err(Error::parse(
                    format!("expected constant array length, found {other}"),
                    span,
                ))
            }
        };
        self.expect_punct(Punct::RBracket)?;
        let inner = self.array_suffix(ty)?;
        Ok(Type::Array(Box::new(inner), len))
    }

    /// Parses an abstract type (for casts and `sizeof`): specifier + stars.
    fn abstract_type(&mut self) -> Result<Type, Error> {
        let base = self.type_specifier()?;
        Ok(self.pointer_suffix(base))
    }

    // ---- items ----------------------------------------------------------

    fn translation_unit(&mut self) -> Result<TranslationUnit, Error> {
        let mut items = Vec::new();
        while *self.peek() != TokenKind::Eof {
            self.item(&mut items)?;
        }
        Ok(TranslationUnit {
            items,
            structs: Default::default(),
            expr_count: self.next_expr_id,
        })
    }

    fn item(&mut self, items: &mut Vec<Item>) -> Result<(), Error> {
        // `struct S { … };` definition?
        if *self.peek() == TokenKind::Keyword(Keyword::Struct)
            && matches!(self.peek_at(1), TokenKind::Ident(_))
            && *self.peek_at(2) == TokenKind::Punct(Punct::LBrace)
        {
            items.push(Item::Struct(self.struct_def()?));
            return Ok(());
        }
        let start = self.span();
        let base = self.type_specifier()?;
        let ty = self.pointer_suffix(base.clone());
        let (name, name_span) = self.expect_ident()?;

        if *self.peek() == TokenKind::Punct(Punct::LParen) {
            items.push(Item::Function(self.function(ty, name, start)?));
            return Ok(());
        }

        // Global variable(s): `int a = 1, *b;` expands into one item each.
        let ty = self.array_suffix(ty)?;
        let init = self.initializer_opt()?;
        items.push(Item::Global(VarDecl {
            name,
            ty,
            init,
            span: start.to(name_span),
        }));
        while self.eat_punct(Punct::Comma) {
            let (name, ty, span) = self.declarator(base.clone())?;
            let init = self.initializer_opt()?;
            items.push(Item::Global(VarDecl {
                name,
                ty,
                init,
                span,
            }));
        }
        self.expect_punct(Punct::Semi)?;
        Ok(())
    }

    fn struct_def(&mut self) -> Result<StructDef, Error> {
        let start = self.span();
        self.bump(); // struct
        let (name, _) = self.expect_ident()?;
        self.expect_punct(Punct::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            let base = self.type_specifier()?;
            loop {
                let (fname, fty, fspan) = self.declarator(base.clone())?;
                fields.push(Field {
                    name: fname,
                    ty: fty,
                    span: fspan,
                });
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::Semi)?;
        }
        self.expect_punct(Punct::Semi)?;
        Ok(StructDef {
            name,
            fields,
            span: start.to(self.prev_span()),
        })
    }

    fn function(&mut self, ret: Type, name: String, start: Span) -> Result<Function, Error> {
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.eat_punct(Punct::RParen) {
            // `(void)` parameter list
            if *self.peek() == TokenKind::Keyword(Keyword::Void)
                && *self.peek_at(1) == TokenKind::Punct(Punct::RParen)
            {
                self.bump();
                self.bump();
            } else {
                loop {
                    let base = self.type_specifier()?;
                    let (pname, pty, pspan) = self.declarator(base)?;
                    params.push(Param {
                        name: pname,
                        // Array parameters decay to pointers, as in C.
                        ty: pty.decay(),
                        span: pspan,
                    });
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                self.expect_punct(Punct::RParen)?;
            }
        }
        let sig_span = start.to(self.prev_span());
        let body = if self.eat_punct(Punct::Semi) {
            None
        } else {
            Some(self.block()?)
        };
        Ok(Function {
            name,
            ret,
            params,
            body,
            span: sig_span,
        })
    }

    // ---- statements -----------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, Error> {
        self.expect_punct(Punct::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat_punct(Punct::RBrace) {
            if *self.peek() == TokenKind::Eof {
                return Err(Error::parse("unterminated block", self.span()));
            }
            stmts.push(self.statement()?);
        }
        Ok(stmts)
    }

    fn statement(&mut self) -> Result<Stmt, Error> {
        let start = self.span();
        match self.peek() {
            TokenKind::Punct(Punct::LBrace) => {
                let stmts = self.block()?;
                Ok(Stmt {
                    kind: StmtKind::Block(stmts),
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                let then_s = Box::new(self.statement()?);
                let else_s = if self.eat_keyword(Keyword::Else) {
                    Some(Box::new(self.statement()?))
                } else {
                    None
                };
                Ok(Stmt {
                    kind: StmtKind::If {
                        cond,
                        then_s,
                        else_s,
                    },
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.statement()?);
                Ok(Stmt {
                    kind: StmtKind::While { cond, body },
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Keyword(Keyword::Do) => {
                self.bump();
                let body = Box::new(self.statement()?);
                if !self.eat_keyword(Keyword::While) {
                    return Err(Error::parse(
                        format!("expected `while` after do-body, found {}", self.peek()),
                        self.span(),
                    ));
                }
                self.expect_punct(Punct::LParen)?;
                let cond = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::DoWhile { body, cond },
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init = if self.eat_punct(Punct::Semi) {
                    None
                } else if self.at_type_start() {
                    Some(Box::new(self.decl_statement()?))
                } else {
                    let expr = self.expression()?;
                    self.expect_punct(Punct::Semi)?;
                    Some(Box::new(Stmt {
                        span: expr.span,
                        kind: StmtKind::Expr(Some(expr)),
                    }))
                };
                let cond = if *self.peek() == TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_punct(Punct::Semi)?;
                let step = if *self.peek() == TokenKind::Punct(Punct::RParen) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.statement()?);
                Ok(Stmt {
                    kind: StmtKind::For {
                        init,
                        cond,
                        step,
                        body,
                    },
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if *self.peek() == TokenKind::Punct(Punct::Semi) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Return(value),
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Break,
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Continue,
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::Punct(Punct::Semi) => {
                self.bump();
                Ok(Stmt {
                    kind: StmtKind::Expr(None),
                    span: start,
                })
            }
            _ if self.at_type_start() => self.decl_statement(),
            _ => {
                let expr = self.expression()?;
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt {
                    span: start.to(self.prev_span()),
                    kind: StmtKind::Expr(Some(expr)),
                })
            }
        }
    }

    /// Parses a declaration statement, desugaring `int a = 1, b;` into a
    /// block of single declarations.
    fn decl_statement(&mut self) -> Result<Stmt, Error> {
        let start = self.span();
        let base = self.type_specifier()?;
        let mut decls = Vec::new();
        loop {
            let (name, ty, span) = self.declarator(base.clone())?;
            let init = self.initializer_opt()?;
            decls.push(Stmt {
                kind: StmtKind::Decl(VarDecl {
                    name,
                    ty,
                    init,
                    span,
                }),
                span,
            });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::Semi)?;
        let full = start.to(self.prev_span());
        if decls.len() == 1 {
            let mut stmt = decls.pop().expect("one decl");
            // a single-declarator statement spans `int x = e;` entirely
            stmt.span = full;
            Ok(stmt)
        } else {
            Ok(Stmt {
                kind: StmtKind::Block(decls),
                span: full,
            })
        }
    }

    fn initializer_opt(&mut self) -> Result<Option<Init>, Error> {
        if !self.eat_punct(Punct::Assign) {
            return Ok(None);
        }
        Ok(Some(self.initializer()?))
    }

    fn initializer(&mut self) -> Result<Init, Error> {
        if self.eat_punct(Punct::LBrace) {
            let mut items = Vec::new();
            if !self.eat_punct(Punct::RBrace) {
                loop {
                    items.push(self.initializer()?);
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                    // allow trailing comma
                    if *self.peek() == TokenKind::Punct(Punct::RBrace) {
                        break;
                    }
                }
                self.expect_punct(Punct::RBrace)?;
            }
            Ok(Init::List(items))
        } else {
            Ok(Init::Expr(self.assign_expr()?))
        }
    }

    // ---- expressions ----------------------------------------------------

    /// Full expression including the comma operator.
    fn expression(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.assign_expr()?;
        while self.eat_punct(Punct::Comma) {
            let rhs = self.assign_expr()?;
            let span = lhs.span.to(rhs.span);
            lhs = self.mk(ExprKind::Comma(Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn assign_expr(&mut self) -> Result<Expr, Error> {
        let lhs = self.ternary_expr()?;
        let op = match self.peek() {
            TokenKind::Punct(Punct::Assign) => Some(None),
            TokenKind::Punct(Punct::PlusAssign) => Some(Some(BinOp::Add)),
            TokenKind::Punct(Punct::MinusAssign) => Some(Some(BinOp::Sub)),
            TokenKind::Punct(Punct::StarAssign) => Some(Some(BinOp::Mul)),
            TokenKind::Punct(Punct::SlashAssign) => Some(Some(BinOp::Div)),
            TokenKind::Punct(Punct::PercentAssign) => Some(Some(BinOp::Rem)),
            TokenKind::Punct(Punct::AmpAssign) => Some(Some(BinOp::BitAnd)),
            TokenKind::Punct(Punct::PipeAssign) => Some(Some(BinOp::BitOr)),
            TokenKind::Punct(Punct::CaretAssign) => Some(Some(BinOp::BitXor)),
            TokenKind::Punct(Punct::ShlAssign) => Some(Some(BinOp::Shl)),
            TokenKind::Punct(Punct::ShrAssign) => Some(Some(BinOp::Shr)),
            _ => None,
        };
        let Some(op) = op else {
            return Ok(lhs);
        };
        self.bump();
        let rhs = self.assign_expr()?; // right associative
        let span = lhs.span.to(rhs.span);
        Ok(self.mk(
            ExprKind::Assign {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            span,
        ))
    }

    fn ternary_expr(&mut self) -> Result<Expr, Error> {
        let cond = self.binary_expr(0)?;
        if !self.eat_punct(Punct::Question) {
            return Ok(cond);
        }
        let then_e = self.expression()?;
        self.expect_punct(Punct::Colon)?;
        let else_e = self.assign_expr()?;
        let span = cond.span.to(else_e.span);
        Ok(self.mk(
            ExprKind::Ternary {
                cond: Box::new(cond),
                then_e: Box::new(then_e),
                else_e: Box::new(else_e),
            },
            span,
        ))
    }

    fn binary_op(&self) -> Option<(BinOp, u8)> {
        let op = match self.peek() {
            TokenKind::Punct(Punct::Star) => (BinOp::Mul, 10),
            TokenKind::Punct(Punct::Slash) => (BinOp::Div, 10),
            TokenKind::Punct(Punct::Percent) => (BinOp::Rem, 10),
            TokenKind::Punct(Punct::Plus) => (BinOp::Add, 9),
            TokenKind::Punct(Punct::Minus) => (BinOp::Sub, 9),
            TokenKind::Punct(Punct::Shl) => (BinOp::Shl, 8),
            TokenKind::Punct(Punct::Shr) => (BinOp::Shr, 8),
            TokenKind::Punct(Punct::Lt) => (BinOp::Lt, 7),
            TokenKind::Punct(Punct::Le) => (BinOp::Le, 7),
            TokenKind::Punct(Punct::Gt) => (BinOp::Gt, 7),
            TokenKind::Punct(Punct::Ge) => (BinOp::Ge, 7),
            TokenKind::Punct(Punct::EqEq) => (BinOp::Eq, 6),
            TokenKind::Punct(Punct::Ne) => (BinOp::Ne, 6),
            TokenKind::Punct(Punct::Amp) => (BinOp::BitAnd, 5),
            TokenKind::Punct(Punct::Caret) => (BinOp::BitXor, 4),
            TokenKind::Punct(Punct::Pipe) => (BinOp::BitOr, 3),
            TokenKind::Punct(Punct::AndAnd) => (BinOp::LogAnd, 2),
            TokenKind::Punct(Punct::OrOr) => (BinOp::LogOr, 1),
            _ => return None,
        };
        Some(op)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, Error> {
        let mut lhs = self.unary_expr()?;
        while let Some((op, prec)) = self.binary_op() {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            let span = lhs.span.to(rhs.span);
            lhs = self.mk(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    /// Whether a `(` at the current position opens a cast / type operand.
    fn paren_opens_type(&self) -> bool {
        *self.peek() == TokenKind::Punct(Punct::LParen)
            && matches!(
                self.peek_at(1),
                TokenKind::Keyword(
                    Keyword::Void
                        | Keyword::Char
                        | Keyword::Int
                        | Keyword::Long
                        | Keyword::Float
                        | Keyword::Double
                        | Keyword::Unsigned
                        | Keyword::Signed
                        | Keyword::Struct
                        | Keyword::Const
                )
            )
    }

    fn unary_expr(&mut self) -> Result<Expr, Error> {
        let start = self.span();
        match self.peek() {
            TokenKind::Punct(Punct::Minus) => {
                self.bump();
                let operand = self.unary_expr()?;
                let span = start.to(operand.span);
                Ok(self.mk(
                    ExprKind::Unary {
                        op: UnOp::Neg,
                        expr: Box::new(operand),
                    },
                    span,
                ))
            }
            TokenKind::Punct(Punct::Plus) => {
                self.bump();
                let operand = self.unary_expr()?;
                let span = start.to(operand.span);
                Ok(self.mk(
                    ExprKind::Unary {
                        op: UnOp::Plus,
                        expr: Box::new(operand),
                    },
                    span,
                ))
            }
            TokenKind::Punct(Punct::Bang) => {
                self.bump();
                let operand = self.unary_expr()?;
                let span = start.to(operand.span);
                Ok(self.mk(
                    ExprKind::Unary {
                        op: UnOp::Not,
                        expr: Box::new(operand),
                    },
                    span,
                ))
            }
            TokenKind::Punct(Punct::Tilde) => {
                self.bump();
                let operand = self.unary_expr()?;
                let span = start.to(operand.span);
                Ok(self.mk(
                    ExprKind::Unary {
                        op: UnOp::BitNot,
                        expr: Box::new(operand),
                    },
                    span,
                ))
            }
            TokenKind::Punct(Punct::Star) => {
                self.bump();
                let operand = self.unary_expr()?;
                let span = start.to(operand.span);
                Ok(self.mk(ExprKind::Deref(Box::new(operand)), span))
            }
            TokenKind::Punct(Punct::Amp) => {
                self.bump();
                let operand = self.unary_expr()?;
                let span = start.to(operand.span);
                Ok(self.mk(ExprKind::AddrOf(Box::new(operand)), span))
            }
            TokenKind::Punct(Punct::PlusPlus) => {
                self.bump();
                let operand = self.unary_expr()?;
                let span = start.to(operand.span);
                Ok(self.mk(
                    ExprKind::IncDec {
                        op: IncDecOp::PreInc,
                        expr: Box::new(operand),
                    },
                    span,
                ))
            }
            TokenKind::Punct(Punct::MinusMinus) => {
                self.bump();
                let operand = self.unary_expr()?;
                let span = start.to(operand.span);
                Ok(self.mk(
                    ExprKind::IncDec {
                        op: IncDecOp::PreDec,
                        expr: Box::new(operand),
                    },
                    span,
                ))
            }
            TokenKind::Keyword(Keyword::Sizeof) => {
                self.bump();
                if self.paren_opens_type() {
                    self.bump(); // (
                    let ty = self.abstract_type()?;
                    self.expect_punct(Punct::RParen)?;
                    let span = start.to(self.prev_span());
                    Ok(self.mk(ExprKind::SizeofType(ty), span))
                } else {
                    let operand = self.unary_expr()?;
                    let span = start.to(operand.span);
                    Ok(self.mk(ExprKind::SizeofExpr(Box::new(operand)), span))
                }
            }
            _ if self.paren_opens_type() => {
                self.bump(); // (
                let ty = self.abstract_type()?;
                self.expect_punct(Punct::RParen)?;
                let operand = self.unary_expr()?;
                let span = start.to(operand.span);
                Ok(self.mk(
                    ExprKind::Cast {
                        ty,
                        expr: Box::new(operand),
                    },
                    span,
                ))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, Error> {
        let mut expr = self.primary_expr()?;
        loop {
            match self.peek() {
                TokenKind::Punct(Punct::LBracket) => {
                    self.bump();
                    let index = self.expression()?;
                    self.expect_punct(Punct::RBracket)?;
                    let span = expr.span.to(self.prev_span());
                    expr = self.mk(
                        ExprKind::Index {
                            base: Box::new(expr),
                            index: Box::new(index),
                        },
                        span,
                    );
                }
                TokenKind::Punct(Punct::Dot) => {
                    self.bump();
                    let (field, fspan) = self.expect_ident()?;
                    let span = expr.span.to(fspan);
                    expr = self.mk(
                        ExprKind::Member {
                            base: Box::new(expr),
                            field,
                            arrow: false,
                        },
                        span,
                    );
                }
                TokenKind::Punct(Punct::Arrow) => {
                    self.bump();
                    let (field, fspan) = self.expect_ident()?;
                    let span = expr.span.to(fspan);
                    expr = self.mk(
                        ExprKind::Member {
                            base: Box::new(expr),
                            field,
                            arrow: true,
                        },
                        span,
                    );
                }
                TokenKind::Punct(Punct::PlusPlus) => {
                    self.bump();
                    let span = expr.span.to(self.prev_span());
                    expr = self.mk(
                        ExprKind::IncDec {
                            op: IncDecOp::PostInc,
                            expr: Box::new(expr),
                        },
                        span,
                    );
                }
                TokenKind::Punct(Punct::MinusMinus) => {
                    self.bump();
                    let span = expr.span.to(self.prev_span());
                    expr = self.mk(
                        ExprKind::IncDec {
                            op: IncDecOp::PostDec,
                            expr: Box::new(expr),
                        },
                        span,
                    );
                }
                TokenKind::Punct(Punct::LParen) => {
                    // Direct calls only: the callee must be an identifier.
                    let ExprKind::Ident(callee) = &expr.kind else {
                        return Err(Error::parse(
                            "only direct calls to named functions are supported",
                            self.span(),
                        ));
                    };
                    let callee = callee.clone();
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat_punct(Punct::RParen) {
                        loop {
                            args.push(self.assign_expr()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                        self.expect_punct(Punct::RParen)?;
                    }
                    let span = expr.span.to(self.prev_span());
                    expr = self.mk(ExprKind::Call { callee, args }, span);
                }
                _ => return Ok(expr),
            }
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, Error> {
        let span = self.span();
        match self.bump() {
            TokenKind::IntLit(v) => Ok(self.mk(ExprKind::IntLit(v), span)),
            TokenKind::FloatLit(v) => Ok(self.mk(ExprKind::FloatLit(v), span)),
            TokenKind::CharLit(v) => Ok(self.mk(ExprKind::CharLit(v), span)),
            TokenKind::StrLit(s) => Ok(self.mk(ExprKind::StrLit(s), span)),
            TokenKind::Ident(name) => Ok(self.mk(ExprKind::Ident(name), span)),
            TokenKind::Punct(Punct::LParen) => {
                let expr = self.expression()?;
                self.expect_punct(Punct::RParen)?;
                Ok(expr)
            }
            other => Err(Error::parse(
                format!("expected an expression, found {other}"),
                span,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> TranslationUnit {
        parse_tokens(src, lex(src).expect("lexes")).expect("parses")
    }

    fn parse_err(src: &str) -> Error {
        match parse_tokens(src, lex(src).expect("lexes")) {
            Ok(_) => panic!("expected parse error for {src:?}"),
            Err(err) => err,
        }
    }

    fn first_fn(unit: &TranslationUnit) -> &Function {
        unit.functions().next().expect("has a function")
    }

    #[test]
    fn parses_empty_unit() {
        assert!(parse("").items.is_empty());
    }

    #[test]
    fn parses_function_with_params() {
        let unit = parse("int add(int a, int b) { return a + b; }");
        let f = first_fn(&unit);
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Type::Int);
        assert_eq!(f.body.as_ref().map(|b| b.len()), Some(1));
    }

    #[test]
    fn array_param_decays() {
        let unit = parse("void f(int xs[10]) { }");
        assert_eq!(first_fn(&unit).params[0].ty, Type::Ptr(Box::new(Type::Int)));
    }

    #[test]
    fn parses_prototypes() {
        let unit = parse("double sqrt(double x);");
        assert!(unit.function("sqrt").is_some());
        assert!(unit.functions().next().is_none()); // no definitions
    }

    #[test]
    fn parses_struct_definition() {
        let unit = parse("struct point { int x; int y; double w[3]; };");
        match &unit.items[0] {
            Item::Struct(def) => {
                assert_eq!(def.name, "point");
                assert_eq!(def.fields.len(), 3);
                assert_eq!(def.fields[2].ty, Type::Array(Box::new(Type::Double), 3));
            }
            other => panic!("expected struct, got {other:?}"),
        }
    }

    #[test]
    fn parses_globals_with_initializers() {
        let unit = parse("int limit = 100;\ndouble table[4] = {1.0, 2.0, 3.0, 4.0};");
        let globals: Vec<_> = unit.globals().collect();
        assert_eq!(globals.len(), 2);
        assert!(matches!(globals[0].init, Some(Init::Expr(_))));
        match &globals[1].init {
            Some(Init::List(items)) => assert_eq!(items.len(), 4),
            other => panic!("expected list init, got {other:?}"),
        }
    }

    #[test]
    fn multi_declarator_locals_desugar_to_block() {
        let unit = parse("void f() { int a = 1, b = 2; }");
        let f = first_fn(&unit);
        match &f.body.as_ref().unwrap()[0].kind {
            StmtKind::Block(stmts) => assert_eq!(stmts.len(), 2),
            other => panic!("expected block, got {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let unit = parse("int f() { return 1 + 2 * 3; }");
        let f = first_fn(&unit);
        let StmtKind::Return(Some(expr)) = &f.body.as_ref().unwrap()[0].kind else {
            panic!("expected return");
        };
        let ExprKind::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = &expr.kind
        else {
            panic!("expected + at top, got {:?}", expr.kind);
        };
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn assignment_is_right_associative() {
        let unit = parse("void f() { int a; int b; a = b = 3; }");
        let f = first_fn(&unit);
        let StmtKind::Expr(Some(expr)) = &f.body.as_ref().unwrap()[2].kind else {
            panic!("expected expr stmt");
        };
        let ExprKind::Assign { rhs, .. } = &expr.kind else {
            panic!("expected assign");
        };
        assert!(matches!(rhs.kind, ExprKind::Assign { .. }));
    }

    #[test]
    fn parses_casts_and_sizeof() {
        let unit = parse("long f(int x) { return (long)x + sizeof(int) + sizeof x; }");
        let f = first_fn(&unit);
        let StmtKind::Return(Some(expr)) = &f.body.as_ref().unwrap()[0].kind else {
            panic!("expected return");
        };
        let mut casts = 0;
        let mut sizeofs = 0;
        expr.walk(&mut |e| match &e.kind {
            ExprKind::Cast { .. } => casts += 1,
            ExprKind::SizeofType(_) | ExprKind::SizeofExpr(_) => sizeofs += 1,
            _ => {}
        });
        assert_eq!((casts, sizeofs), (1, 2));
    }

    #[test]
    fn parses_pointer_and_member_chains() {
        let unit = parse("struct p { int x; };\nint f(struct p *q) { return q->x + (*q).x; }");
        let f = first_fn(&unit);
        assert_eq!(
            f.params[0].ty,
            Type::Ptr(Box::new(Type::Struct("p".into())))
        );
    }

    #[test]
    fn parses_control_flow() {
        let unit = parse(
            "int f(int n) {\n  int s = 0;\n  for (int i = 0; i < n; i++) { s += i; }\n  while (s > 100) s--; \n  do { s++; } while (s < 10);\n  if (s == 42) return 1; else return 0;\n}",
        );
        let f = first_fn(&unit);
        assert_eq!(f.body.as_ref().unwrap().len(), 5);
    }

    #[test]
    fn parses_ternary_and_logical() {
        let unit = parse("int f(int a, int b) { return a && b ? a : b || 1; }");
        let f = first_fn(&unit);
        let StmtKind::Return(Some(expr)) = &f.body.as_ref().unwrap()[0].kind else {
            panic!();
        };
        assert!(matches!(expr.kind, ExprKind::Ternary { .. }));
    }

    #[test]
    fn expr_ids_are_unique() {
        let unit = parse("int f(int a) { return a + a * a - a; }");
        let mut ids = std::collections::BTreeSet::new();
        let f = first_fn(&unit);
        let StmtKind::Return(Some(expr)) = &f.body.as_ref().unwrap()[0].kind else {
            panic!();
        };
        expr.walk(&mut |e| {
            assert!(ids.insert(e.id), "duplicate id {:?}", e.id);
        });
        assert!(unit.expr_count as usize >= ids.len());
    }

    #[test]
    fn unsized_array_param_and_local_pointer() {
        let unit = parse("void f(char buf[]) { char *p = buf; *p = 0; }");
        assert_eq!(
            first_fn(&unit).params[0].ty,
            Type::Ptr(Box::new(Type::Char))
        );
    }

    #[test]
    fn error_on_missing_semicolon() {
        let err = parse_err("int f() { return 1 }");
        assert!(err.to_string().contains("expected `;`"));
    }

    #[test]
    fn error_on_indirect_call() {
        let err = parse_err("void f(int (*g)()) { }");
        let _ = err; // function pointers are outside the subset
    }

    #[test]
    fn error_on_unterminated_block() {
        let err = parse_err("int f() { return 1;");
        assert!(err.to_string().contains("unterminated block"));
    }

    #[test]
    fn error_on_bad_array_length() {
        let err = parse_err("int xs[n];");
        assert!(err.to_string().contains("constant array length"));
    }

    #[test]
    fn unsigned_and_long_specifiers() {
        let unit = parse("unsigned long f(unsigned x, long long y) { return x; }");
        let f = first_fn(&unit);
        assert_eq!(f.ret, Type::ULong);
        assert_eq!(f.params[0].ty, Type::UInt);
        assert_eq!(f.params[1].ty, Type::Long);
    }
}
