//! Feasibility-pruning benchmarks, plus the `BENCH_9.json` perf-smoke
//! summary.
//!
//! The `bench_feasibility` group measures the two costs the tiered
//! pipeline trades against each other:
//!
//! * **per-fork refutation latency by tier** — what one probe costs when
//!   it is settled by the syntactic check (tier 0), the
//!   interval/congruence domain (tier 1), and the SAT-lite solver's
//!   difference-logic theory (tier 2);
//! * **end-to-end wall time and paths explored** on the deliberately
//!   branch-heavy synthetic corpus (`mlcorpus::synth::generate_branch_heavy`),
//!   per `--feasibility` mode.
//!
//! Custom `main` (harness = false): after the criterion group it
//! re-measures the headline numbers and writes them to `BENCH_9.json`
//! (path overridable via `BENCH_OUT`), asserting the contract the modes
//! are sold on — `full` explores strictly fewer paths than `intervals`,
//! which explores strictly fewer than `syntactic`, and on this corpus
//! `full` finishes faster than `syntactic` end to end. `BENCH_QUICK=1`
//! shrinks sample counts for the smoke job.

use std::time::Instant;

use criterion::{black_box, Criterion};
use minic::ast::BinOp;
use privacyscope::{Analyzer, AnalyzerOptions, FeasibilityMode, Report};
use symexec::constraints::{probe_pipeline, ConstraintManager, ProbeOutcome};
use symexec::domain::AbstractDomain;
use symexec::path::PathCondition;
use symexec::value::{SVal, Symbol};

/// Seed and cluster count of the branch-heavy module: two contradiction
/// clusters multiply the syntactic path count by 36² but the concretely
/// feasible count only by 12², so the modes diverge by a stable margin.
const BH_SEED: u64 = 3;
const BH_CLUSTERS: usize = 2;

fn sym(id: u32, hint: &str) -> SVal {
    SVal::Sym(Symbol::new(id, hint))
}

/// A probe settled by tier 0: `x > 50` already assumed, `x < 5` probed.
fn tier0_fixture() -> (ConstraintManager, AbstractDomain, PathCondition, SVal) {
    let mut cm = ConstraintManager::new();
    let guard = SVal::binary(BinOp::Gt, sym(0, "x"), SVal::Int(50));
    cm.assume(&guard, true);
    let mut path = PathCondition::new();
    path.push(guard, true);
    let cond = SVal::binary(BinOp::Lt, sym(0, "x"), SVal::Int(5));
    (cm, AbstractDomain::new(), path, cond)
}

/// A probe only tier 1 settles: `x > 37` assumed, `x * 3 < 90` probed —
/// the syntactic tier deliberately keeps multiplication feasible.
fn tier1_fixture() -> (ConstraintManager, AbstractDomain, PathCondition, SVal) {
    let mut cm = ConstraintManager::new();
    let mut domain = AbstractDomain::new();
    let guard = SVal::binary(BinOp::Gt, sym(0, "x"), SVal::Int(37));
    cm.assume(&guard, true);
    domain.assume(&guard, true);
    let mut path = PathCondition::new();
    path.push(guard, true);
    let cond = SVal::binary(
        BinOp::Lt,
        SVal::binary(BinOp::Mul, sym(0, "x"), SVal::Int(3)),
        SVal::Int(90),
    );
    (cm, domain, path, cond)
}

/// A probe only tier 2 settles: `x < y` on the path, `y < x` probed — a
/// variable-order cycle no non-relational domain can see.
fn tier2_fixture() -> (ConstraintManager, AbstractDomain, PathCondition, SVal) {
    let mut cm = ConstraintManager::new();
    let mut domain = AbstractDomain::new();
    let guard = SVal::binary(BinOp::Lt, sym(0, "x"), sym(1, "y"));
    cm.assume(&guard, true);
    domain.assume(&guard, true);
    let mut path = PathCondition::new();
    path.push(guard, true);
    let cond = SVal::binary(BinOp::Lt, sym(1, "y"), sym(0, "x"));
    (cm, domain, path, cond)
}

fn probe_outcome(
    mode: FeasibilityMode,
    fixture: &(ConstraintManager, AbstractDomain, PathCondition, SVal),
) -> ProbeOutcome {
    let (cm, domain, path, cond) = fixture;
    probe_pipeline(mode, cm, domain, path, cond, true)
}

fn branch_heavy_report(mode: FeasibilityMode) -> Report {
    let module = mlcorpus::synth::generate_branch_heavy(BH_SEED, BH_CLUSTERS);
    let options = AnalyzerOptions {
        max_paths: 8192,
        workers: 1,
        feasibility: mode,
        ..AnalyzerOptions::default()
    };
    Analyzer::from_sources(&module.source, &module.edl, options)
        .expect("branch-heavy module builds")
        .analyze(module.entry)
        .expect("branch-heavy module analyzes")
}

fn bench_feasibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("bench_feasibility");
    let t0 = tier0_fixture();
    let t1 = tier1_fixture();
    let t2 = tier2_fixture();
    group.bench_function("probe_refute/syntactic", |b| {
        b.iter(|| probe_outcome(FeasibilityMode::Syntactic, black_box(&t0)))
    });
    group.bench_function("probe_refute/intervals", |b| {
        b.iter(|| probe_outcome(FeasibilityMode::Intervals, black_box(&t1)))
    });
    group.bench_function("probe_refute/solver", |b| {
        b.iter(|| probe_outcome(FeasibilityMode::Full, black_box(&t2)))
    });
    group.sample_size(5);
    for mode in [
        FeasibilityMode::Syntactic,
        FeasibilityMode::Intervals,
        FeasibilityMode::Full,
    ] {
        group.bench_function(format!("branch_heavy/{}", mode.as_str()), |b| {
            b.iter(|| branch_heavy_report(mode))
        });
    }
    group.finish();
}

/// Median per-iteration nanoseconds over `samples` batches of `iters`.
fn median_ns<O, F: FnMut() -> O>(samples: usize, iters: u32, mut f: F) -> f64 {
    let mut costs: Vec<f64> = (0..samples.max(2))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / f64::from(iters)
        })
        .collect();
    costs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    costs[costs.len() / 2]
}

fn main() {
    let quick = std::env::var_os("BENCH_QUICK").is_some();
    let mut c = Criterion::default().sample_size(if quick { 10 } else { 50 });
    bench_feasibility(&mut c);

    // Headline numbers for BENCH_9.json.
    let (samples, iters) = if quick { (5, 500) } else { (20, 2000) };
    let t0 = tier0_fixture();
    let t1 = tier1_fixture();
    let t2 = tier2_fixture();
    assert_eq!(
        probe_outcome(FeasibilityMode::Syntactic, &t0),
        ProbeOutcome::RefutedSyntactic
    );
    assert_eq!(
        probe_outcome(FeasibilityMode::Intervals, &t1),
        ProbeOutcome::RefutedIntervals
    );
    assert_eq!(
        probe_outcome(FeasibilityMode::Full, &t2),
        ProbeOutcome::RefutedSolver
    );
    let tier0_ns = median_ns(samples, iters, || {
        probe_outcome(FeasibilityMode::Syntactic, &t0)
    });
    let tier1_ns = median_ns(samples, iters, || {
        probe_outcome(FeasibilityMode::Intervals, &t1)
    });
    let tier2_ns = median_ns(samples, iters, || probe_outcome(FeasibilityMode::Full, &t2));

    let e2e_samples = if quick { 3 } else { 9 };
    let mut wall_ms = Vec::new();
    let mut reports = Vec::new();
    for mode in [
        FeasibilityMode::Syntactic,
        FeasibilityMode::Intervals,
        FeasibilityMode::Full,
    ] {
        wall_ms.push(median_ns(e2e_samples, 1, || branch_heavy_report(mode)) / 1e6);
        reports.push(branch_heavy_report(mode));
    }
    let paths: Vec<usize> = reports.iter().map(|r| r.stats.paths).collect();
    for report in &reports {
        assert!(
            !report.is_degraded(),
            "branch-heavy corpus must be explored exhaustively in every mode"
        );
    }
    assert!(
        paths[1] < paths[0] && paths[2] < paths[1],
        "pruning contract violated: paths explored were syntactic {} / intervals {} / full {}",
        paths[0],
        paths[1],
        paths[2]
    );
    assert!(
        wall_ms[2] < wall_ms[0],
        "full ({:.1}ms) must beat syntactic ({:.1}ms) on the branch-heavy corpus",
        wall_ms[2],
        wall_ms[0]
    );
    let speedup = wall_ms[0] / wall_ms[2];

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| String::from("BENCH_9.json"));
    let json = format!(
        "{{\n  \"bench\": \"feasibility\",\n  \"quick\": {quick},\n  \"probe_refute_ns\": {{\n    \"syntactic\": {tier0_ns:.1},\n    \"intervals\": {tier1_ns:.1},\n    \"solver\": {tier2_ns:.1}\n  }},\n  \"branch_heavy\": {{\n    \"seed\": {BH_SEED},\n    \"clusters\": {BH_CLUSTERS},\n    \"syntactic\": {{ \"wall_ms\": {:.1}, \"paths\": {} }},\n    \"intervals\": {{ \"wall_ms\": {:.1}, \"paths\": {} }},\n    \"full\": {{ \"wall_ms\": {:.1}, \"paths\": {} }},\n    \"speedup_full_vs_syntactic\": {speedup:.2}\n  }}\n}}\n",
        wall_ms[0], paths[0], wall_ms[1], paths[1], wall_ms[2], paths[2],
    );
    std::fs::write(&out, json).expect("write bench summary");
    println!(
        "probe refute ns: tier0 {tier0_ns:.0} / tier1 {tier1_ns:.0} / tier2 {tier2_ns:.0}; \
         branch-heavy paths {} -> {} -> {}, full {speedup:.1}x faster -> {out}",
        paths[0], paths[1], paths[2]
    );
}
