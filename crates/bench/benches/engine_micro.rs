//! Microbenchmarks of the engine's building blocks: frontend parsing,
//! expression simplification, constraint management, taint joins, PRIML
//! analysis, the enclave runtime interpreter, and the supervised-runtime
//! overhead (deadline polling).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use minic::ast::BinOp;
use symexec::constraints::ConstraintManager;
use symexec::engine::{Engine, EngineConfig, ParamBinding};
use symexec::simplify::simplify;
use symexec::value::{SVal, Symbol};
use taint::{SourceId, TaintSet};

fn bench_frontend(c: &mut Criterion) {
    let source = mlcorpus::kmeans::module().source;
    c.bench_function("minic_parse_kmeans", |b| {
        b.iter(|| minic::parse(source).expect("parses"))
    });
    let edl_text = mlcorpus::kmeans::module().edl;
    c.bench_function("edl_parse", |b| {
        b.iter(|| edl::parse_edl(edl_text).expect("parses"))
    });
}

fn deep_expr(depth: usize) -> SVal {
    let mut expr = SVal::Sym(Symbol::new(0, "x"));
    for i in 0..depth {
        expr = SVal::binary(
            if i % 2 == 0 { BinOp::Add } else { BinOp::Mul },
            expr,
            SVal::Int((i % 7) as i64 + 1),
        );
    }
    expr
}

fn bench_simplify(c: &mut Criterion) {
    let expr = deep_expr(64);
    c.bench_function("simplify_depth64", |b| b.iter(|| simplify(&expr)));
}

fn bench_constraints(c: &mut Criterion) {
    c.bench_function("constraints_assume_chain", |b| {
        b.iter(|| {
            let mut cm = ConstraintManager::new();
            for i in 0..32 {
                let sym = SVal::Sym(Symbol::new(i % 4, format!("s{}", i % 4)));
                let cond = SVal::binary(BinOp::Gt, sym, SVal::Int(i as i64 - 16));
                let _ = cm.assume(&cond, true);
            }
            cm
        })
    });
}

fn bench_taint(c: &mut Criterion) {
    let sets: Vec<TaintSet> = (0..16)
        .map(|i| TaintSet::from_sources((0..i % 5).map(SourceId::new)))
        .collect();
    c.bench_function("taint_join_fold", |b| {
        b.iter(|| {
            let mut acc = TaintSet::bottom();
            for s in &sets {
                acc = taint::binop(&acc, s);
            }
            acc
        })
    });
}

fn bench_priml(c: &mut Criterion) {
    let program = priml::parse(priml::examples::EXAMPLE2).expect("parses");
    c.bench_function("priml_analyze_example2", |b| {
        b.iter(|| priml::analysis::analyze(&program))
    });
    c.bench_function("priml_concrete_run", |b| {
        b.iter(|| priml::concrete::run(&program, &[9]).expect("runs"))
    });
}

fn bench_runtime(c: &mut Criterion) {
    let module = mlcorpus::kmeans::module();
    let enclave = sgx_sim::Enclave::load(module.source, module.edl).expect("enclave loads");
    let points: Vec<sgx_sim::interp::Word> = mlcorpus::datasets::kmeans_points(7)
        .into_iter()
        .map(sgx_sim::interp::Word::Float)
        .collect();
    c.bench_function("sgx_sim_kmeans_ecall", |b| {
        b.iter(|| {
            enclave
                .ecall(
                    module.entry,
                    &[
                        sgx_sim::EcallArg::In(points.clone()),
                        sgx_sim::EcallArg::Out(7),
                    ],
                )
                .expect("runs")
        })
    });
}

fn bench_supervisor(c: &mut Criterion) {
    // The deadline supervisor polls a monotonic clock every 64 interpreted
    // steps; this pair quantifies that overhead on a fork-heavy workload
    // (the far-future deadline never fires, so both runs explore the same
    // paths).
    let mut source = String::from("int f(int a) { int s = 0;\n");
    for i in 0..8 {
        source.push_str(&format!("if ((a >> {i}) & 1) s += {i};\n"));
    }
    source.push_str("return s; }");
    let unit = minic::parse(&source).expect("parses");
    let run = |deadline: Option<Duration>| {
        let config = EngineConfig {
            workers: 1,
            deadline,
            ..EngineConfig::default()
        };
        Engine::new(&unit, config)
            .run("f", &[ParamBinding::Scalar])
            .expect("explores")
    };
    c.bench_function("explore_unsupervised", |b| b.iter(|| run(None)));
    c.bench_function("explore_with_deadline", |b| {
        b.iter(|| run(Some(Duration::from_secs(3600))))
    });
}

fn bench_checkpoint(c: &mut Criterion) {
    // Per-wave snapshot overhead: the same fork-heavy workload with a
    // snapshot serialized, fsynced and atomically renamed at *every* wave
    // boundary versus checkpointing disabled. Real runs checkpoint far less
    // often, so this is the worst case.
    let mut source = String::from("int f(int a) { int s = 0;\n");
    for i in 0..8 {
        source.push_str(&format!("if ((a >> {i}) & 1) s += {i};\n"));
    }
    source.push_str("return s; }");
    let unit = minic::parse(&source).expect("parses");
    let path = std::env::temp_dir().join(format!("ps_bench_ckpt_{}.snap", std::process::id()));
    let run = |checkpoint: Option<std::path::PathBuf>| {
        let config = EngineConfig {
            workers: 1,
            checkpoint_every: usize::from(checkpoint.is_some()),
            checkpoint,
            ..EngineConfig::default()
        };
        Engine::new(&unit, config)
            .run("f", &[ParamBinding::Scalar])
            .expect("explores")
    };
    c.bench_function("explore_without_checkpoint", |b| b.iter(|| run(None)));
    c.bench_function("explore_checkpoint_every_wave", |b| {
        b.iter(|| run(Some(path.clone())))
    });
    let _ = std::fs::remove_file(&path);
}

fn bench_telemetry(c: &mut Criterion) {
    // Telemetry overhead per exploration, in three postures: handle
    // disabled (the default — the per-step hot loop must see zero
    // telemetry cost), metrics-only (per-wave counter/histogram updates,
    // no I/O), and full JSONL tracing (per-wave + per-path-task spans
    // through a buffered writer). The workload is the recommender
    // ML-corpus module (kmeans explores for seconds per run — too heavy
    // for an iteration loop).
    let module = mlcorpus::recommender::module();
    let unit = minic::parse(module.source).expect("parses");
    let trace_path =
        std::env::temp_dir().join(format!("ps_bench_trace_{}.jsonl", std::process::id()));
    let metrics_path =
        std::env::temp_dir().join(format!("ps_bench_metrics_{}.json", std::process::id()));
    let run = |telemetry: telemetry::Telemetry| {
        let config = EngineConfig {
            workers: 1,
            max_paths: 32,
            telemetry,
            ..EngineConfig::default()
        };
        Engine::new(&unit, config)
            .run(
                module.entry,
                &[ParamBinding::SecretPointer, ParamBinding::OutPointer],
            )
            .expect("explores")
    };
    c.bench_function("explore_telemetry_off", |b| {
        b.iter(|| run(telemetry::Telemetry::disabled()))
    });
    c.bench_function("explore_telemetry_metrics", |b| {
        let handle = telemetry::TelemetryConfig {
            metrics_out: Some(metrics_path.clone()),
            ..telemetry::TelemetryConfig::default()
        }
        .build()
        .expect("metrics sink opens");
        b.iter(|| run(handle.clone()))
    });
    c.bench_function("explore_telemetry_full", |b| {
        let handle = telemetry::TelemetryConfig {
            trace_out: Some(trace_path.clone()),
            metrics_out: Some(metrics_path.clone()),
            ..telemetry::TelemetryConfig::default()
        }
        .build()
        .expect("trace sink opens");
        b.iter(|| run(handle.clone()))
    });
    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(&metrics_path);
}

criterion_group!(
    benches,
    bench_frontend,
    bench_simplify,
    bench_constraints,
    bench_taint,
    bench_priml,
    bench_runtime,
    bench_supervisor,
    bench_checkpoint,
    bench_telemetry
);
criterion_main!(benches);
