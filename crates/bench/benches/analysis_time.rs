//! Criterion bench behind Table V: statistical analysis-time measurement
//! for the three corpus modules plus the Listing 1 micro-case.

use criterion::{criterion_group, criterion_main, Criterion};
use privacyscope::{Analyzer, AnalyzerOptions};

fn bench_modules(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_analysis_time");
    group.sample_size(10);
    for module in mlcorpus::modules() {
        let options = AnalyzerOptions {
            // a tight budget keeps Kmeans' measurement stable; the table5
            // binary uses the full budget for the headline numbers
            max_paths: 16,
            ..AnalyzerOptions::default()
        };
        let analyzer =
            Analyzer::from_sources(module.source, module.edl, options).expect("module builds");
        group.bench_function(module.name, |b| {
            b.iter(|| {
                let report = analyzer.analyze(module.entry).expect("analyzes");
                assert_eq!(report.findings.len(), module.expected_violations);
                report
            })
        });
    }
    group.finish();
}

fn bench_listing1(c: &mut Criterion) {
    const SOURCE: &str = r#"
int enclave_process_data(char *secrets, char *output) {
    int temporary = secrets[0] + 100;
    output[0] = temporary + 1;
    if (secrets[1] == 0) return 0; else return 1;
}
"#;
    const EDL: &str = r#"
enclave { trusted {
    public int enclave_process_data([in] char *secrets, [out] char *output);
}; };
"#;
    let analyzer =
        Analyzer::from_sources(SOURCE, EDL, AnalyzerOptions::default()).expect("listing 1 builds");
    c.bench_function("listing1_analysis", |b| {
        b.iter(|| analyzer.analyze("enclave_process_data").expect("analyzes"))
    });
}

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("dfa_baseline_time");
    for module in mlcorpus::modules() {
        group.bench_function(module.name, |b| {
            b.iter(|| {
                privacyscope::baseline::analyze(module.source, module.edl, module.entry)
                    .expect("baseline runs")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modules, bench_listing1, bench_baseline);
criterion_main!(benches);
