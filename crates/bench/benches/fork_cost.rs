//! Fork-cost microbenchmarks for the copy-on-write state representation,
//! plus the `BENCH_5.json` perf-smoke summary.
//!
//! The `bench_fork_cost` group compares what a fork costs now (an `Arc`
//! bump per persistent container) against what the pre-COW representation
//! paid (a full `BTreeMap`/`Vec` deep copy of the same contents), and
//! times the end-to-end ML-corpus recommender analysis the paper's
//! evaluation leans on.
//!
//! Custom `main` (harness = false): after running the criterion group it
//! re-measures the three headline numbers — per-fork time (COW vs. deep),
//! bytes-shared ratio after a divergent write, recommender wall time — and
//! writes them to `BENCH_5.json` (path overridable via `BENCH_OUT`) so CI
//! can track the perf trajectory. `BENCH_QUICK=1` shrinks sample counts
//! for the smoke job.

use std::collections::BTreeMap;
use std::time::Instant;

use criterion::{black_box, Criterion};
use minic::ast::{BinOp, ExprId};
use privacyscope::{Analyzer, AnalyzerOptions};
use symexec::state::ExecState;
use symexec::value::{Region, SVal, Symbol};
use taint::{SourceId, TaintSet};

/// How many writes the synthetic fork fixture performs.
const STATE_ENTRIES: usize = 1024;

/// A state shaped like a long-running path: a mix of scalar, element and
/// field regions, symbolic values, partial taint, env bindings and a long
/// write log.
fn populated_state(n: usize) -> ExecState {
    let mut state = ExecState::new();
    let buf = Region::Sym {
        symbol: Symbol::new(0, "buf"),
    };
    for i in 0..n {
        let region = match i % 4 {
            0 => Region::Var {
                frame: 0,
                name: format!("v{i}"),
            },
            1 => Region::element(buf.clone(), SVal::Int(i as i64)),
            2 => Region::field(
                Region::Var {
                    frame: 0,
                    name: format!("s{}", i / 4),
                },
                "f",
            ),
            _ => Region::Global {
                name: format!("g{i}"),
            },
        };
        let value = SVal::binary(
            BinOp::Add,
            SVal::Sym(Symbol::new(i as u32, "x")),
            SVal::Int(i as i64),
        );
        let taint = if i % 3 == 0 {
            TaintSet::source(SourceId::new((i % 8) as u32))
        } else {
            TaintSet::bottom()
        };
        state.write(region, value, taint);
        if i % 5 == 0 {
            state.env.bind(ExprId(i as u32), buf.clone());
        }
    }
    state
}

/// The pre-COW representation of the same contents: what `ExecState::clone`
/// used to copy on every fork.
type DeepMirror = (
    BTreeMap<Region, SVal>,
    BTreeMap<Region, TaintSet>,
    BTreeMap<ExprId, Region>,
    Vec<Region>,
);

fn deep_mirror(state: &ExecState) -> DeepMirror {
    (
        state
            .store
            .iter()
            .map(|(r, v)| (r.clone(), v.clone()))
            .collect(),
        state
            .taints
            .iter()
            .map(|(r, t)| (r.clone(), t.clone()))
            .collect(),
        state.env.iter().map(|(e, r)| (*e, r.clone())).collect(),
        state.write_log.to_vec(),
    )
}

fn recommender_report() -> privacyscope::Report {
    let module = mlcorpus::recommender::module();
    let options = AnalyzerOptions {
        max_paths: 32,
        workers: 1,
        ..AnalyzerOptions::default()
    };
    Analyzer::from_sources(module.source, module.edl, options)
        .expect("recommender builds")
        .analyze(module.entry)
        .expect("recommender analyzes")
}

fn bench_fork_cost(c: &mut Criterion) {
    let state = populated_state(STATE_ENTRIES);
    let mirror = deep_mirror(&state);
    let mut group = c.benchmark_group("bench_fork_cost");
    group.bench_function(format!("fork_cow/{STATE_ENTRIES}"), |b| {
        b.iter(|| state.clone())
    });
    group.bench_function(format!("fork_deep/{STATE_ENTRIES}"), |b| {
        b.iter(|| mirror.clone())
    });
    group
        .sample_size(5)
        .bench_function("recommender_end_to_end", |b| b.iter(recommender_report));
    group.finish();
}

/// Median per-iteration nanoseconds over `samples` batches of `iters`.
fn median_ns<O, F: FnMut() -> O>(samples: usize, iters: u32, mut f: F) -> f64 {
    let mut costs: Vec<f64> = (0..samples.max(2))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / f64::from(iters)
        })
        .collect();
    costs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    costs[costs.len() / 2]
}

fn main() {
    let quick = std::env::var_os("BENCH_QUICK").is_some();
    // `cargo bench` passes --bench; a bare run (or --test in CI) must not
    // choke on unknown flags, so arguments are simply ignored.
    let mut c = Criterion::default().sample_size(if quick { 10 } else { 50 });
    bench_fork_cost(&mut c);

    // Headline numbers for BENCH_5.json.
    let state = populated_state(STATE_ENTRIES);
    let mirror = deep_mirror(&state);
    let (samples, iters) = if quick { (5, 200) } else { (20, 1000) };
    let cow_ns = median_ns(samples, iters, || state.clone());
    let deep_ns = median_ns(samples, iters, || mirror.clone());
    let speedup = deep_ns / cow_ns;

    // Bytes-shared ratio: fork, make one divergent write, then count how
    // much of the fork is still the parent's allocation.
    let mut fork = state.clone();
    fork.write(
        Region::Var {
            frame: 0,
            name: "diverge".into(),
        },
        SVal::Int(1),
        TaintSet::source(SourceId::new(9)),
    );
    let (shared, total) = fork.shared_allocations(&state);
    let ratio = shared as f64 / total.max(1) as f64;

    let rec_samples = if quick { 3 } else { 10 };
    let rec_ms = median_ns(rec_samples, 1, recommender_report) / 1e6;
    let paths = recommender_report().stats.paths;

    assert!(
        speedup >= 2.0,
        "per-fork speedup regressed below the 2x floor: deep {deep_ns:.0}ns / cow {cow_ns:.0}ns = {speedup:.2}x"
    );

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| String::from("BENCH_5.json"));
    let json = format!(
        "{{\n  \"bench\": \"fork_cost\",\n  \"quick\": {quick},\n  \"fork\": {{\n    \"state_entries\": {STATE_ENTRIES},\n    \"cow_ns\": {cow_ns:.1},\n    \"deep_ns\": {deep_ns:.1},\n    \"speedup\": {speedup:.2}\n  }},\n  \"sharing\": {{\n    \"shared_allocations\": {shared},\n    \"total_allocations\": {total},\n    \"ratio\": {ratio:.4}\n  }},\n  \"recommender\": {{\n    \"wall_ms\": {rec_ms:.1},\n    \"paths\": {paths}\n  }}\n}}\n"
    );
    std::fs::write(&out, json).expect("write bench summary");
    println!(
        "fork speedup {speedup:.1}x, shared ratio {ratio:.3}, recommender {rec_ms:.1}ms -> {out}"
    );
}
