//! Criterion bench behind the scalability study: engine cost versus
//! straight-line length, branch count and loop count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privacyscope::{Analyzer, AnalyzerOptions};

fn run(workload: &bench::workloads::Workload, max_paths: usize) -> privacyscope::Report {
    run_with_workers(workload, max_paths, 0)
}

fn run_with_workers(
    workload: &bench::workloads::Workload,
    max_paths: usize,
    workers: usize,
) -> privacyscope::Report {
    let options = AnalyzerOptions {
        max_paths,
        workers,
        ..AnalyzerOptions::default()
    };
    Analyzer::from_sources(&workload.source, &workload.edl, options)
        .expect("workload builds")
        .analyze(&workload.entry)
        .expect("workload analyzes")
}

fn bench_straightline(c: &mut Criterion) {
    let mut group = c.benchmark_group("straightline_loc");
    for n in [50usize, 200, 800] {
        let workload = bench::synthetic_straightline(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &workload, |b, w| {
            b.iter(|| run(w, 4096))
        });
    }
    group.finish();
}

fn bench_branches(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_explosion");
    group.sample_size(10);
    for n in [4usize, 8, 10] {
        let workload = bench::synthetic_branches(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &workload, |b, w| {
            b.iter(|| run(w, 1024))
        });
    }
    group.finish();
}

fn bench_loops(c: &mut Criterion) {
    let mut group = c.benchmark_group("loop_widening");
    for n in [2usize, 8, 16] {
        let workload = bench::synthetic_loops(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &workload, |b, w| {
            b.iter(|| run(w, 1024))
        });
    }
    group.finish();
}

fn bench_workers(c: &mut Criterion) {
    // Sequential legacy mode (workers = 1) against the parallel worklist on
    // the most fork-heavy workload: 2^10 paths through independent
    // branches. 1/2/4 are always measured (the comparison stays meaningful
    // across hosts); the machine's full core count is added when larger.
    let mut group = c.benchmark_group("worklist_workers");
    group.sample_size(10);
    let workload = bench::synthetic_branches(10);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1usize, 2, 4];
    if cores > 4 {
        counts.push(cores);
    }
    for workers in counts {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workload,
            |b, workload| b.iter(|| run_with_workers(workload, 1024, workers)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_straightline,
    bench_branches,
    bench_loops,
    bench_workers
);
criterion_main!(benches);
