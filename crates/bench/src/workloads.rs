//! Synthetic workload generators for the scalability and ablation benches.

use std::fmt::Write as _;

/// A generated workload: source + EDL + the entry ECALL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Mini-C source.
    pub source: String,
    /// EDL interface.
    pub edl: String,
    /// The ECALL to analyze.
    pub entry: String,
}

fn edl_for(entry: &str) -> String {
    format!(
        "enclave {{ trusted {{ public int {entry}([in] char *secrets, [out] char *output); }}; }};"
    )
}

/// A straight-line workload of `n` dependent assignments (LoC sweep with a
/// single path).
pub fn synthetic_straightline(n: usize) -> Workload {
    let entry = "entry";
    let mut source = format!("int {entry}(char *secrets, char *output) {{\n");
    source.push_str("    int acc = secrets[0];\n");
    for i in 0..n {
        let _ = writeln!(source, "    acc = acc * 3 + {i};");
    }
    source.push_str("    output[0] = acc + secrets[1];\n    return 0;\n}\n");
    Workload {
        source,
        edl: edl_for(entry),
        entry: entry.into(),
    }
}

/// A workload with `n` independent symbolic branches (path count 2ⁿ): the
/// exponential face of symbolic execution (§VIII-C).
pub fn synthetic_branches(n: usize) -> Workload {
    let entry = "entry";
    let mut source = format!("int {entry}(char *secrets, char *output) {{\n    int acc = 0;\n");
    for i in 0..n {
        let _ = writeln!(
            source,
            "    if ((secrets[{i}] >> {}) & 1) acc += {i}; else acc -= {i};",
            i % 7
        );
    }
    source.push_str("    output[0] = acc + secrets[0] + secrets[1];\n    return 0;\n}\n");
    Workload {
        source,
        edl: edl_for(entry),
        entry: entry.into(),
    }
}

/// A workload of `n` sequential bounded loops over the secret buffer.
pub fn synthetic_loops(n: usize) -> Workload {
    let entry = "entry";
    let mut source = format!("int {entry}(char *secrets, char *output) {{\n    int acc = 0;\n");
    for i in 0..n {
        let _ = writeln!(
            source,
            "    for (int i{i} = 0; i{i} < 8; i{i}++) {{ acc = acc + secrets[i{i}] * {}; }}",
            i + 1
        );
    }
    source.push_str("    output[0] = acc;\n    return 0;\n}\n");
    Workload {
        source,
        edl: edl_for(entry),
        entry: entry.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privacyscope::{Analyzer, AnalyzerOptions};

    fn analyzes(w: &Workload) -> privacyscope::Report {
        Analyzer::from_sources(&w.source, &w.edl, AnalyzerOptions::default())
            .expect("builds")
            .analyze(&w.entry)
            .expect("analyzes")
    }

    #[test]
    fn straightline_generates_and_analyzes() {
        let w = synthetic_straightline(20);
        let report = analyzes(&w);
        assert_eq!(report.stats.paths, 1);
        // acc mixes secrets[0] history with secrets[1]: ⊤ output, secure.
        assert!(report.is_secure());
    }

    #[test]
    fn branches_scale_path_count() {
        let w = synthetic_branches(5);
        let report = analyzes(&w);
        assert_eq!(report.stats.paths, 32);
    }

    #[test]
    fn loops_generate_and_analyze() {
        let w = synthetic_loops(2);
        let report = analyzes(&w);
        assert!(report.stats.paths >= 1);
    }
}
