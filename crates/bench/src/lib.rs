//! Shared helpers for the PrivacyScope benchmark harness.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper's evaluation (see DESIGN.md §3 for the index); the Criterion
//! benches in `benches/` measure the same workloads statistically.

pub mod workloads;

pub use workloads::{synthetic_branches, synthetic_loops, synthetic_straightline};
