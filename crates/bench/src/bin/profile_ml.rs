//! Quick per-module analysis profiler (dev utility).
use privacyscope::{Analyzer, AnalyzerOptions};
use std::time::Instant;

fn main() {
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    for module in mlcorpus::modules() {
        let options = AnalyzerOptions {
            max_paths: budget,
            ..AnalyzerOptions::default()
        };
        let analyzer = Analyzer::from_sources(module.source, module.edl, options).expect("builds");
        let t = Instant::now();
        let report = analyzer.analyze(module.entry).expect("analyzes");
        println!(
            "{}: {:?} paths={} forks={} findings={}",
            module.name,
            t.elapsed(),
            report.stats.paths,
            report.stats.forks,
            report.findings.len()
        );
    }
}
