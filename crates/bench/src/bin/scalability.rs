//! Scalability study (the §VIII-C concern): analysis time as the analyzed
//! program grows in straight-line length, independent branches (2ⁿ paths)
//! and loop count.
//!
//! ```sh
//! cargo run --release -p bench --bin scalability
//! ```

use std::time::Instant;

use bench::{synthetic_branches, synthetic_loops, synthetic_straightline};
use privacyscope::{Analyzer, AnalyzerOptions};

fn measure(workload: &bench::workloads::Workload, max_paths: usize) -> (f64, usize, bool) {
    let options = AnalyzerOptions {
        max_paths,
        ..AnalyzerOptions::default()
    };
    let analyzer =
        Analyzer::from_sources(&workload.source, &workload.edl, options).expect("workload builds");
    let started = Instant::now();
    let report = analyzer
        .analyze(&workload.entry)
        .expect("workload analyzes");
    (
        started.elapsed().as_secs_f64(),
        report.stats.paths,
        report.stats.exhausted,
    )
}

fn main() {
    println!("SCALABILITY (paper §VIII-C: symbolic execution's known limit)");
    println!();

    println!("1. straight-line length sweep (single path — linear cost)");
    println!("   LoC | time (s)");
    for n in [10usize, 50, 100, 200, 400, 800] {
        let workload = synthetic_straightline(n);
        let (secs, paths, _) = measure(&workload, 4096);
        println!("   {:4} | {secs:.4}   ({paths} path)", n + 4);
    }

    println!();
    println!("2. independent-branch sweep (2^n paths — the exponential face)");
    println!("   branches | paths | time (s) | exhausted");
    for n in [2usize, 4, 6, 8, 10, 12] {
        let workload = synthetic_branches(n);
        let (secs, paths, exhausted) = measure(&workload, 1024);
        println!("   {n:8} | {paths:5} | {secs:8.4} | {exhausted}");
    }

    println!();
    println!("3. bounded-loop sweep (widening keeps cost polynomial)");
    println!("   loops | paths | time (s)");
    for n in [1usize, 2, 4, 8, 16] {
        let workload = synthetic_loops(n);
        let (secs, paths, _) = measure(&workload, 1024);
        println!("   {n:5} | {paths:5} | {secs:.4}");
    }

    println!();
    println!("4. path-budget ablation on the 12-branch workload");
    println!("   budget | paths | time (s) | exhausted");
    for budget in [16usize, 64, 256, 1024, 4096] {
        let workload = synthetic_branches(12);
        let (secs, paths, exhausted) = measure(&workload, budget);
        println!("   {budget:6} | {paths:5} | {secs:8.4} | {exhausted}");
    }
}
