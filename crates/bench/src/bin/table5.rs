//! Regenerates Table V of the paper: per-module LoC and analysis time.
//!
//! ```sh
//! cargo run --release -p bench --bin table5
//! ```
//!
//! Absolute times depend on the host (the paper used Clang 7 on an Intel
//! NUC); the *shape* to compare is: Kmeans is the slowest by a wide margin
//! (its data-dependent branching drives path exploration), the branch-free
//! LinearRegression and the lightly-branching Recommender are fast.

use std::time::Instant;

use privacyscope::{Analyzer, AnalyzerOptions};

fn main() {
    println!("TABLE V: Performance evaluation");
    println!();
    println!("Open Source ML Code | Size (LoCs) | Execution Time (sec.)");
    println!("--------------------+-------------+----------------------");
    let mut rows = Vec::new();
    for module in mlcorpus::modules() {
        let options = AnalyzerOptions {
            max_paths: 64,
            ..AnalyzerOptions::default()
        };
        let analyzer =
            Analyzer::from_sources(module.source, module.edl, options).expect("module builds");
        let started = Instant::now();
        let report = analyzer.analyze(module.entry).expect("module analyzes");
        let secs = started.elapsed().as_secs_f64();
        println!("{:19} | {:11} | {secs:.3}s", module.name, report.stats.loc);
        rows.push((module.name, report.stats.loc, secs, report.findings.len()));
    }
    println!();
    println!("paper reported:      LinearRegression 161 LoC / 2.549s,");
    println!("                     Kmeans 179 LoC / 4.654s,");
    println!("                     Recommender 117 LoC / 1.758s");
    let kmeans = rows.iter().find(|r| r.0 == "Kmeans").expect("kmeans row");
    let slowest = rows
        .iter()
        .max_by(|a, b| a.2.total_cmp(&b.2))
        .expect("rows");
    println!();
    println!(
        "shape check: slowest module is {} ({}; paper: Kmeans)",
        slowest.0,
        if slowest.0 == kmeans.0 {
            "matches"
        } else {
            "DIFFERS"
        }
    );
}
