//! Regenerates the §VI-D case studies: the six Recommender violations and
//! the injected-Kmeans detections, with the DFA baseline as contrast.
//!
//! ```sh
//! cargo run --release -p bench --bin casestudies
//! ```

use privacyscope::{Analyzer, AnalyzerOptions};

fn main() {
    println!("CASE STUDY 1: Finding information leakage in Recommender");
    println!("=========================================================");
    let module = mlcorpus::recommender_vulnerable();
    let analyzer = Analyzer::from_sources(module.source, module.edl, AnalyzerOptions::default())
        .expect("builds");
    let report = analyzer.analyze(module.entry).expect("analyzes");
    println!("{report}");
    println!(
        "paper reported 6 nonreversibility violations; this port reproduces {} ({} explicit, {} implicit)",
        report.findings.len(),
        report.explicit_findings().count(),
        report.implicit_findings().count(),
    );

    println!();
    println!("— responsible disclosure applied: the fixed variant —");
    let fixed = mlcorpus::recommender::fixed();
    let analyzer = Analyzer::from_sources(fixed.source, fixed.edl, AnalyzerOptions::default())
        .expect("builds");
    println!("{}", analyzer.analyze(fixed.entry).expect("analyzes"));

    println!();
    println!("CASE STUDY 2: Verifying effectiveness of PrivacyScope in Kmeans");
    println!("===============================================================");
    let options = AnalyzerOptions {
        max_paths: 16,
        ..AnalyzerOptions::default()
    };
    let clean = mlcorpus::kmeans::module();
    let analyzer =
        Analyzer::from_sources(clean.source, clean.edl, options.clone()).expect("builds");
    let report = analyzer.analyze(clean.entry).expect("analyzes");
    println!(
        "clean Kmeans: {} finding(s) ({} paths explored)",
        report.findings.len(),
        report.stats.paths
    );

    for injection in mlcorpus::inject::kmeans_injections().expect("corpus anchors intact") {
        println!();
        println!(
            "injected payload `{}` ({}):",
            injection.name,
            if injection.explicit {
                "explicit"
            } else {
                "implicit"
            }
        );
        println!("    {}", injection.payload);
        let module = injection.module;
        let analyzer =
            Analyzer::from_sources(module.source, module.edl, options.clone()).expect("builds");
        let symbolic = analyzer.analyze(module.entry).expect("analyzes");
        let baseline = privacyscope::baseline::analyze(module.source, module.edl, module.entry)
            .expect("baseline runs");
        println!(
            "    PrivacyScope: {} finding(s) [{}] — DFA baseline: {} finding(s)",
            symbolic.findings.len(),
            symbolic
                .findings
                .iter()
                .map(|f| f.kind.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            baseline.findings.len(),
        );
        for finding in &symbolic.findings {
            print!("    {finding}");
        }
    }
}
