//! Regenerates Tables II and III of the paper: the PRIML simulation traces
//! of Examples 1 (explicit leakage) and 2 (implicit leakage).
//!
//! ```sh
//! cargo run -p bench --bin tables23
//! ```

use priml::analysis::{analyze, render_table2, render_table3};
use priml::examples::{EXAMPLE1, EXAMPLE2};

fn main() {
    println!("TABLE II: Simulation of PrivacyScope detecting explicit leakage");
    println!();
    println!("program:");
    for line in EXAMPLE1.lines() {
        println!("    {line}");
    }
    println!();
    let outcome = analyze(&priml::parse(EXAMPLE1).expect("example 1 parses"));
    println!("{}", render_table2(&outcome));
    for violation in &outcome.violations {
        println!("verdict: {violation}");
    }

    println!();
    println!("TABLE III: Simulation of PrivacyScope detecting implicit leakage");
    println!();
    println!("program:");
    for line in EXAMPLE2.lines() {
        println!("    {line}");
    }
    println!();
    let outcome = analyze(&priml::parse(EXAMPLE2).expect("example 2 parses"));
    println!("{}", render_table3(&outcome));
    for violation in &outcome.violations {
        println!("verdict: {violation}");
    }
}
