//! Ablation study over the design choices DESIGN.md calls out:
//!
//! * Algorithm 1's `hm` cross-path comparison on/off (implicit detection);
//! * the symbolic analyzer vs the path-insensitive DFA baseline (§II-B);
//! * the taint lattice's ⊤ level (mixing) — what the findings would look
//!   like if ⊤ were treated as a violation.
//!
//! ```sh
//! cargo run --release -p bench --bin ablation
//! ```

use privacyscope::{Analyzer, AnalyzerOptions};
use taint::{Label, SourceId};

fn main() {
    println!("ABLATION 1: implicit detection (Alg. 1 `hm`) on/off");
    println!("----------------------------------------------------");
    println!("module | full analysis | hm disabled | DFA baseline");
    let options_fast = AnalyzerOptions {
        max_paths: 16,
        ..AnalyzerOptions::default()
    };
    let mut corpus: Vec<mlcorpus::Module> = mlcorpus::modules();
    corpus.extend(
        mlcorpus::inject::kmeans_injections()
            .expect("corpus anchors intact")
            .into_iter()
            .map(|i| i.module),
    );
    for module in &corpus {
        let base_options = if module.name.contains("Kmeans") {
            options_fast.clone()
        } else {
            AnalyzerOptions::default()
        };
        let full = Analyzer::from_sources(module.source, module.edl, base_options.clone())
            .and_then(|a| a.analyze(module.entry))
            .expect("analyzes");
        let no_hm_options = AnalyzerOptions {
            check_implicit: false,
            ..base_options
        };
        let no_hm = Analyzer::from_sources(module.source, module.edl, no_hm_options)
            .and_then(|a| a.analyze(module.entry))
            .expect("analyzes");
        let baseline = privacyscope::baseline::analyze(module.source, module.edl, module.entry)
            .expect("baseline runs");
        println!(
            "{:18} | {:2} ({}E/{}I) | {:2} | {:2}",
            module.name,
            full.findings.len(),
            full.explicit_findings().count(),
            full.implicit_findings().count(),
            no_hm.findings.len(),
            baseline.findings.len(),
        );
    }
    println!();
    println!("reading: disabling `hm` loses exactly the implicit findings;");
    println!("the path-insensitive baseline can never see them (paper §II-B).");

    println!();
    println!("ABLATION 2: the ⊤ level of the taint lattice (Fig. 1)");
    println!("------------------------------------------------------");
    // Exhaustive join table — the executable Fig. 2.
    let labels = [
        Label::Bot,
        Label::Src(SourceId::new(1)),
        Label::Src(SourceId::new(2)),
        Label::Top,
    ];
    println!("P_binop join table (rows ⊔ columns):");
    print!("{:6}", "");
    for b in labels {
        print!("{b:>6}");
    }
    println!();
    for a in labels {
        print!("{a:>6}");
        for b in labels {
            print!("{:>6}", a.join(b).to_string());
        }
        println!();
    }
    println!();
    println!("nonreversibility verdicts per level:");
    for label in labels {
        println!(
            "  {label}: tainted={} reversible-violation={}",
            label.is_tainted(),
            label.is_reversible()
        );
    }
    println!();
    println!("if ⊤ were treated as a violation (i.e. plain noninterference),");
    println!("every ML model output would be flagged — the paper's motivation:");
    let module = mlcorpus::linear_regression::module();
    let analyzer = Analyzer::from_sources(module.source, module.edl, AnalyzerOptions::default())
        .expect("builds");
    let report = analyzer.analyze(module.entry).expect("analyzes");
    // count ⊤-tainted outputs by re-running and inspecting channels
    println!(
        "  LinearRegression under nonreversibility: {} finding(s) (model outputs are ⊤)",
        report.findings.len()
    );
    println!("  (under noninterference every model[i] write would violate)");
}
