//! Regenerates Table IV of the paper: the symbolic exploration of the
//! Listing 1 example — states A…E with env/σ/π evolution, SymRegion
//! creation and the fork over `secrets[1]`.
//!
//! ```sh
//! cargo run -p bench --bin table4
//! ```

use privacyscope::{Analyzer, AnalyzerOptions};

const LISTING1: &str = r#"int enclave_process_data(char *secrets, char *output)
{
    int temporary = secrets[0] + 100;
    output[0] = temporary + 1;
    if (secrets[1] == 0)
        return 0;
    else
        return 1;
}
"#;

const LISTING1_EDL: &str = r#"
enclave {
    trusted {
        public int enclave_process_data([in, count=2] char *secrets,
                                        [out, count=1] char *output);
    };
};
"#;

fn main() {
    println!("TABLE IV: Symbolic exploration of the illustrative example (Listing 1)");
    println!();
    println!("{LISTING1}");
    let analyzer = Analyzer::from_sources(LISTING1, LISTING1_EDL, AnalyzerOptions::default())
        .expect("listing 1 builds");
    let table = analyzer
        .trace_table("enclave_process_data")
        .expect("traces");
    println!("{table}");

    println!("BOX 1: the warning report generated from the exploration");
    println!();
    let report = analyzer.analyze("enclave_process_data").expect("analyzes");
    println!("{report}");
}
