//! Property-based tests: the taint semi-lattice of Fig. 1 obeys the
//! semilattice laws, and the `TaintSet → Label` projection is a lattice
//! homomorphism.

use proptest::prelude::*;
use taint::{Label, SourceId, TaintSet};

/// Arbitrary labels over a small source universe (collisions are the
/// interesting cases).
fn arb_label() -> impl Strategy<Value = Label> {
    prop_oneof![
        Just(Label::Bot),
        (0u32..6).prop_map(|i| Label::Src(SourceId::new(i))),
        Just(Label::Top),
    ]
}

fn arb_taintset() -> impl Strategy<Value = TaintSet> {
    proptest::collection::btree_set(0u32..6, 0..5)
        .prop_map(|s| TaintSet::from_sources(s.into_iter().map(SourceId::new)))
}

proptest! {
    #[test]
    fn label_join_commutative(a in arb_label(), b in arb_label()) {
        prop_assert_eq!(a.join(b), b.join(a));
    }

    #[test]
    fn label_join_associative(a in arb_label(), b in arb_label(), c in arb_label()) {
        prop_assert_eq!(a.join(b).join(c), a.join(b.join(c)));
    }

    #[test]
    fn label_join_idempotent(a in arb_label()) {
        prop_assert_eq!(a.join(a), a);
    }

    #[test]
    fn label_bot_identity_top_absorbing(a in arb_label()) {
        prop_assert_eq!(a.join(Label::Bot), a);
        prop_assert_eq!(a.join(Label::Top), Label::Top);
    }

    #[test]
    fn label_le_is_partial_order(a in arb_label(), b in arb_label(), c in arb_label()) {
        // reflexive
        prop_assert!(a.le(a));
        // antisymmetric
        if a.le(b) && b.le(a) {
            prop_assert_eq!(a, b);
        }
        // transitive
        if a.le(b) && b.le(c) {
            prop_assert!(a.le(c));
        }
    }

    #[test]
    fn label_join_is_least_upper_bound(a in arb_label(), b in arb_label(), c in arb_label()) {
        let j = a.join(b);
        prop_assert!(a.le(j));
        prop_assert!(b.le(j));
        if a.le(c) && b.le(c) {
            prop_assert!(j.le(c));
        }
    }

    #[test]
    fn taintset_join_laws(a in arb_taintset(), b in arb_taintset(), c in arb_taintset()) {
        prop_assert_eq!(a.join(&b), b.join(&a));
        prop_assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
        prop_assert_eq!(a.join(&a), a.clone());
        prop_assert_eq!(a.join(&TaintSet::bottom()), a);
    }

    #[test]
    fn projection_is_homomorphism(a in arb_taintset(), b in arb_taintset()) {
        prop_assert_eq!(a.join(&b).label(), a.label().join(b.label()));
    }

    #[test]
    fn reversible_iff_single_source(a in arb_taintset()) {
        prop_assert_eq!(a.is_reversible(), a.len() == 1);
        prop_assert_eq!(a.label().is_reversible(), a.is_reversible());
        prop_assert_eq!(a.label().is_tainted(), a.is_tainted());
    }

    #[test]
    fn policy_binop_matches_label_join(a in arb_taintset(), b in arb_taintset()) {
        let joined = taint::binop(&a, &b);
        prop_assert_eq!(joined.label(), a.label().join(b.label()));
        // P_cond is the same join applied to (condition, π).
        prop_assert_eq!(taint::cond(&a, &b), joined);
    }
}
