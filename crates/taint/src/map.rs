//! The `τΔ` taint environment: a mapping from program entities to taint.

use std::fmt;

use im::OrdMap;
use serde::{Deserialize, Serialize};

use crate::lattice::TaintSet;

/// `τΔ` — maps program entities (variables, memory regions, the path
/// constraint `π`, …) to their [`TaintSet`].
///
/// Lookups of unbound keys yield ⊥, matching the paper's convention that
/// everything starts untainted. Keys iterate in a deterministic (sorted)
/// order so that analysis traces are reproducible.
///
/// Entries live in a persistent ordered map: cloning the environment (as
/// the symbolic engine does on every path fork) is O(1), and updates share
/// all untouched tree nodes with the original — which is why the key type
/// carries a `Clone` bound.
///
/// # Examples
///
/// ```
/// use taint::{SourceId, TaintMap, TaintSet};
///
/// let mut tau: TaintMap<String> = TaintMap::new();
/// tau.set("h".to_string(), TaintSet::source(SourceId::new(1)));
/// assert!(tau.get(&"h".to_string()).is_reversible());
/// assert!(tau.get(&"x".to_string()).is_empty()); // unbound ⇒ ⊥
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaintMap<K: Ord + Clone> {
    entries: OrdMap<K, TaintSet>,
}

impl<K: Ord + Clone> Default for TaintMap<K> {
    fn default() -> Self {
        TaintMap {
            entries: OrdMap::new(),
        }
    }
}

impl<K: Ord + Clone> TaintMap<K> {
    /// Creates an empty taint environment (everything ⊥).
    pub fn new() -> Self {
        TaintMap::default()
    }

    /// Returns the taint of `key`, ⊥ if unbound.
    pub fn get(&self, key: &K) -> TaintSet {
        self.entries.get(key).cloned().unwrap_or_default()
    }

    /// Binds `key` to `taint`, returning the previous binding if any.
    ///
    /// Binding ⊥ removes the entry, keeping the map canonical: two maps are
    /// equal iff they assign every key the same taint.
    pub fn set(&mut self, key: K, taint: TaintSet) -> Option<TaintSet> {
        if taint.is_empty() {
            self.entries.remove(&key)
        } else {
            self.entries.insert(key, taint)
        }
    }

    /// Joins `taint` into the existing binding of `key`.
    pub fn join_into(&mut self, key: K, taint: &TaintSet) {
        if taint.is_empty() {
            return;
        }
        // Persistent maps have no in-place entry API: read, join, rebind
        // (the rebind path-copies O(log n) nodes).
        let mut joined = self.entries.get(&key).cloned().unwrap_or_default();
        joined.join_assign(taint);
        self.entries.insert(key, joined);
    }

    /// Pointwise join with another map (used when merging paths).
    pub fn join_map(&mut self, other: &TaintMap<K>) {
        for (k, v) in &other.entries {
            self.join_into(k.clone(), v);
        }
    }

    /// Number of tainted (non-⊥) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entity is tainted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over tainted entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &TaintSet)> {
        self.entries.iter()
    }

    /// Removes a binding.
    pub fn remove(&mut self, key: &K) -> Option<TaintSet> {
        self.entries.remove(key)
    }

    /// Diagnostic: (shared-with-`other`, total) map-node counts.
    pub fn sharing(&self, other: &TaintMap<K>) -> (usize, usize) {
        (
            self.entries.shared_node_count(&other.entries),
            self.entries.node_count(),
        )
    }
}

impl<K: Ord + Clone + fmt::Display> fmt::Display for TaintMap<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k} → {v}")?;
        }
        write!(f, "}}")
    }
}

impl<K: Ord + Clone> FromIterator<(K, TaintSet)> for TaintMap<K> {
    fn from_iter<I: IntoIterator<Item = (K, TaintSet)>>(iter: I) -> Self {
        let mut map = TaintMap::new();
        for (k, v) in iter {
            map.set(k, v);
        }
        map
    }
}

impl<K: Ord + Clone> Extend<(K, TaintSet)> for TaintMap<K> {
    fn extend<I: IntoIterator<Item = (K, TaintSet)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.set(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::SourceId;

    fn src(i: u32) -> TaintSet {
        TaintSet::source(SourceId::new(i))
    }

    #[test]
    fn unbound_is_bottom() {
        let map: TaintMap<&str> = TaintMap::new();
        assert!(map.get(&"x").is_empty());
    }

    #[test]
    fn set_and_get() {
        let mut map = TaintMap::new();
        assert_eq!(map.set("h", src(1)), None);
        assert_eq!(map.get(&"h"), src(1));
        assert_eq!(map.set("h", src(2)), Some(src(1)));
    }

    #[test]
    fn setting_bottom_removes_entry() {
        let mut map = TaintMap::new();
        map.set("h", src(1));
        map.set("h", TaintSet::bottom());
        assert!(map.is_empty());
        assert_eq!(map, TaintMap::new());
    }

    #[test]
    fn join_into_accumulates() {
        let mut map = TaintMap::new();
        map.join_into("pi", &src(1));
        map.join_into("pi", &src(2));
        assert_eq!(map.get(&"pi").len(), 2);
        // joining ⊥ is a no-op and does not create entries
        map.join_into("other", &TaintSet::bottom());
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn join_map_is_pointwise() {
        let mut a = TaintMap::new();
        a.set("x", src(1));
        let mut b = TaintMap::new();
        b.set("x", src(2));
        b.set("y", src(3));
        a.join_map(&b);
        assert_eq!(a.get(&"x").len(), 2);
        assert_eq!(a.get(&"y"), src(3));
    }

    #[test]
    fn display_is_sorted_and_stable() {
        let mut map = TaintMap::new();
        map.set("b", src(2));
        map.set("a", src(1));
        assert_eq!(map.to_string(), "{a → t1, b → t2}");
    }

    #[test]
    fn from_iterator_collects() {
        let map: TaintMap<&str> = [("x", src(1)), ("y", TaintSet::bottom())]
            .into_iter()
            .collect();
        assert_eq!(map.len(), 1);
    }
}
