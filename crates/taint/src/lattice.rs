//! The security semi-lattice of Fig. 1 and its provenance-precise refinement.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a taint source (the `tᵢ` of the paper's lattice).
///
/// Each call to a secret source (`get_secret(secret)` in PRIML, an `[in]`
/// ECALL parameter element, or a registered decrypt function in C) mints a
/// distinct `SourceId`.
///
/// # Examples
///
/// ```
/// use taint::SourceId;
/// let t1 = SourceId::new(1);
/// assert_eq!(t1.index(), 1);
/// assert_eq!(t1.to_string(), "t1");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SourceId(u32);

impl SourceId {
    /// Creates a source identifier with the given index.
    pub fn new(index: u32) -> Self {
        SourceId(index)
    }

    /// Returns the numeric index of this source.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u32> for SourceId {
    fn from(index: u32) -> Self {
        SourceId(index)
    }
}

/// A point of the paper's three-level semi-lattice (Fig. 1).
///
/// * `Bot` (⊥) — not sensitive.
/// * `Src(tᵢ)` — tainted by exactly one secret source; revealing such a value
///   violates nonreversibility (the attacker can invert the computation).
/// * `Top` (⊤) — tainted by two or more distinct sources; revealing it does
///   *not* break nonreversibility because no single secret is recoverable
///   without knowledge of the others.
///
/// The lattice has only a join (it is a join-semilattice); meet is never
/// needed by the policy.
///
/// # Examples
///
/// ```
/// use taint::{Label, SourceId};
/// let t1 = Label::Src(SourceId::new(1));
/// let t2 = Label::Src(SourceId::new(2));
/// assert_eq!(t1.join(Label::Bot), t1);
/// assert_eq!(t1.join(t1), t1);
/// assert_eq!(t1.join(t2), Label::Top);
/// assert_eq!(Label::Top.join(Label::Bot), Label::Top);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Label {
    /// ⊥ — not sensitive.
    #[default]
    Bot,
    /// `tᵢ` — sensitive, single provenance.
    Src(SourceId),
    /// ⊤ — mixed provenance (two or more distinct sources).
    Top,
}

impl Label {
    /// Join (least upper bound) of two labels.
    pub fn join(self, other: Label) -> Label {
        match (self, other) {
            (Label::Bot, x) | (x, Label::Bot) => x,
            (Label::Top, _) | (_, Label::Top) => Label::Top,
            (Label::Src(a), Label::Src(b)) => {
                if a == b {
                    Label::Src(a)
                } else {
                    Label::Top
                }
            }
        }
    }

    /// Whether this label denotes *some* sensitivity (`tᵢ` or ⊤).
    pub fn is_tainted(self) -> bool {
        !matches!(self, Label::Bot)
    }

    /// Whether revealing a value with this label violates nonreversibility.
    ///
    /// Only single-source values (`Src`) are reversible: ⊥ carries no secret
    /// and ⊤ mixes several secrets, so neither is a violation on its own.
    pub fn is_reversible(self) -> bool {
        matches!(self, Label::Src(_))
    }

    /// Partial-order test: `self ⊑ other` in the semi-lattice.
    pub fn le(self, other: Label) -> bool {
        self.join(other) == other
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Bot => write!(f, "⊥"),
            Label::Src(s) => write!(f, "{s}"),
            Label::Top => write!(f, "⊤"),
        }
    }
}

/// Provenance-precise taint: the exact set of sources that influenced a
/// value.
///
/// The paper's lattice forgets *which* sources make up ⊤. For actionable
/// reports ("`output[0]` reveals `secrets[0]`") the analyzer needs the set,
/// so we carry it and project to [`Label`] on demand. The projection is a
/// lattice homomorphism: `project(a ∪ b) = project(a) ⊔ project(b)`.
///
/// # Examples
///
/// ```
/// use taint::{Label, SourceId, TaintSet};
/// let ts = TaintSet::source(SourceId::new(3)).join(&TaintSet::source(SourceId::new(7)));
/// assert_eq!(ts.label(), Label::Top);
/// assert_eq!(ts.sources().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct TaintSet {
    sources: BTreeSet<SourceId>,
}

impl TaintSet {
    /// The empty (⊥) taint set.
    pub fn bottom() -> Self {
        TaintSet::default()
    }

    /// A singleton taint set for one source.
    pub fn source(id: SourceId) -> Self {
        let mut sources = BTreeSet::new();
        sources.insert(id);
        TaintSet { sources }
    }

    /// Builds a taint set from an iterator of sources.
    pub fn from_sources<I: IntoIterator<Item = SourceId>>(iter: I) -> Self {
        TaintSet {
            sources: iter.into_iter().collect(),
        }
    }

    /// Set union — the join of the refinement lattice.
    pub fn join(&self, other: &TaintSet) -> TaintSet {
        TaintSet {
            sources: self.sources.union(&other.sources).copied().collect(),
        }
    }

    /// In-place union.
    pub fn join_assign(&mut self, other: &TaintSet) {
        self.sources.extend(other.sources.iter().copied());
    }

    /// Projects the provenance set onto the paper's three-level lattice.
    pub fn label(&self) -> Label {
        match self.sources.len() {
            0 => Label::Bot,
            1 => Label::Src(*self.sources.iter().next().expect("len checked")),
            _ => Label::Top,
        }
    }

    /// Whether any source influenced the value.
    pub fn is_tainted(&self) -> bool {
        !self.sources.is_empty()
    }

    /// Whether revealing a value with this taint violates nonreversibility
    /// (exactly one source).
    pub fn is_reversible(&self) -> bool {
        self.sources.len() == 1
    }

    /// Number of distinct sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether the set is ⊥.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Iterates over the sources in ascending order.
    pub fn sources(&self) -> impl Iterator<Item = SourceId> + '_ {
        self.sources.iter().copied()
    }

    /// The single source, if the taint is reversible.
    pub fn sole_source(&self) -> Option<SourceId> {
        if self.sources.len() == 1 {
            self.sources.iter().next().copied()
        } else {
            None
        }
    }

    /// Subset test: `self ⊑ other`.
    pub fn le(&self, other: &TaintSet) -> bool {
        self.sources.is_subset(&other.sources)
    }
}

impl fmt::Display for TaintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.label() {
            Label::Bot => write!(f, "⊥"),
            Label::Src(s) => write!(f, "{s}"),
            Label::Top => {
                write!(f, "⊤{{")?;
                for (i, s) in self.sources.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl FromIterator<SourceId> for TaintSet {
    fn from_iter<I: IntoIterator<Item = SourceId>>(iter: I) -> Self {
        TaintSet::from_sources(iter)
    }
}

impl Extend<SourceId> for TaintSet {
    fn extend<I: IntoIterator<Item = SourceId>>(&mut self, iter: I) {
        self.sources.extend(iter);
    }
}

impl From<SourceId> for TaintSet {
    fn from(id: SourceId) -> Self {
        TaintSet::source(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> Label {
        Label::Src(SourceId::new(i))
    }

    #[test]
    fn label_join_identity() {
        for l in [Label::Bot, t(1), Label::Top] {
            assert_eq!(l.join(Label::Bot), l);
            assert_eq!(Label::Bot.join(l), l);
        }
    }

    #[test]
    fn label_join_absorbing() {
        for l in [Label::Bot, t(1), Label::Top] {
            assert_eq!(l.join(Label::Top), Label::Top);
            assert_eq!(Label::Top.join(l), Label::Top);
        }
    }

    #[test]
    fn label_join_same_source_idempotent() {
        assert_eq!(t(4).join(t(4)), t(4));
    }

    #[test]
    fn label_join_distinct_sources_is_top() {
        assert_eq!(t(1).join(t(2)), Label::Top);
    }

    #[test]
    fn label_partial_order() {
        assert!(Label::Bot.le(t(1)));
        assert!(t(1).le(Label::Top));
        assert!(Label::Bot.le(Label::Top));
        assert!(!t(1).le(t(2)));
        assert!(!Label::Top.le(t(1)));
        assert!(t(3).le(t(3)));
    }

    #[test]
    fn label_reversibility() {
        assert!(!Label::Bot.is_reversible());
        assert!(t(1).is_reversible());
        assert!(!Label::Top.is_reversible());
        assert!(!Label::Bot.is_tainted());
        assert!(t(1).is_tainted());
        assert!(Label::Top.is_tainted());
    }

    #[test]
    fn taintset_projection_matches_cardinality() {
        assert_eq!(TaintSet::bottom().label(), Label::Bot);
        assert_eq!(TaintSet::source(SourceId::new(9)).label(), t(9));
        let two = TaintSet::from_sources([SourceId::new(1), SourceId::new(2)]);
        assert_eq!(two.label(), Label::Top);
    }

    #[test]
    fn taintset_join_is_union() {
        let a = TaintSet::from_sources([SourceId::new(1), SourceId::new(2)]);
        let b = TaintSet::from_sources([SourceId::new(2), SourceId::new(3)]);
        let j = a.join(&b);
        assert_eq!(j.len(), 3);
        assert!(a.le(&j) && b.le(&j));
    }

    #[test]
    fn projection_is_homomorphism_on_samples() {
        let cases = [
            (TaintSet::bottom(), TaintSet::source(SourceId::new(1))),
            (
                TaintSet::source(SourceId::new(1)),
                TaintSet::source(SourceId::new(1)),
            ),
            (
                TaintSet::source(SourceId::new(1)),
                TaintSet::source(SourceId::new(2)),
            ),
            (
                TaintSet::from_sources([SourceId::new(1), SourceId::new(2)]),
                TaintSet::source(SourceId::new(3)),
            ),
        ];
        for (a, b) in cases {
            assert_eq!(a.join(&b).label(), a.label().join(b.label()));
        }
    }

    #[test]
    fn sole_source_only_for_singletons() {
        assert_eq!(TaintSet::bottom().sole_source(), None);
        assert_eq!(
            TaintSet::source(SourceId::new(5)).sole_source(),
            Some(SourceId::new(5))
        );
        let two = TaintSet::from_sources([SourceId::new(1), SourceId::new(2)]);
        assert_eq!(two.sole_source(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TaintSet::bottom().to_string(), "⊥");
        assert_eq!(TaintSet::source(SourceId::new(2)).to_string(), "t2");
        let two = TaintSet::from_sources([SourceId::new(1), SourceId::new(2)]);
        assert_eq!(two.to_string(), "⊤{t1,t2}");
        assert_eq!(Label::Top.to_string(), "⊤");
    }
}
