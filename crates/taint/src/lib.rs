//! Taint lattice and propagation rules for PrivacyScope.
//!
//! This crate implements the security semi-lattice of Fig. 1 of the paper
//! (*PrivacyScope*, ICDCS 2020) and the propagation policy of Fig. 2 /
//! Table I:
//!
//! * [`Label`] — the three-level semi-lattice `{⊥, tᵢ, ⊤}`: not sensitive,
//!   tainted by exactly one secret source, or tainted by two or more distinct
//!   sources (at which point revealing the value no longer violates
//!   *nonreversibility*, because no single secret can be deterministically
//!   recovered).
//! * [`TaintSet`] — a provenance-precise refinement that remembers *which*
//!   sources flowed into a value. Its [`TaintSet::label`] projection recovers
//!   the paper's lattice; analyzers use the set for reporting ("`output[0]`
//!   reveals `secrets[0]`") and the projection for the policy decision.
//! * [`policy`] — the propagation functions `P_getsecret`, `P_const`,
//!   `P_unop`, `P_assign`, `P_binop`, `P_cond` from Table I / Fig. 2.
//! * [`TaintMap`] — the `τΔ` mapping from program entities to taint.
//!
//! # Examples
//!
//! ```
//! use taint::{Label, SourceId, TaintSet};
//!
//! let s1 = SourceId::new(1);
//! let s2 = SourceId::new(2);
//! let a = TaintSet::source(s1);
//! let b = TaintSet::source(s2);
//!
//! // h1 + 4 is still recoverable: a single source.
//! assert_eq!(a.join(&TaintSet::bottom()).label(), Label::Src(s1));
//! // h1 + 4 + h2 mixes two sources: ⊤, revealing it is nonreversible-safe.
//! assert_eq!(a.join(&b).label(), Label::Top);
//! ```

pub mod lattice;
pub mod map;
pub mod policy;

pub use lattice::{Label, SourceId, TaintSet};
pub use map::TaintMap;
pub use policy::{assign, binop, cond, constant, get_secret, unop};
