//! Propagation policy: the `P_*` components of Table I and Fig. 2.
//!
//! Each function mirrors one row of Table I of the paper. They operate on
//! the provenance-precise [`TaintSet`]; projecting the result with
//! [`TaintSet::label`] recovers the paper's lattice-level rule exactly
//! (the projection is a homomorphism, see [`crate::lattice`]).

use crate::lattice::{SourceId, TaintSet};

/// `P_getsecret` — a value read from a secret source is tainted by a fresh
/// source label `tᵢ`.
///
/// # Examples
///
/// ```
/// use taint::{get_secret, Label, SourceId};
/// assert_eq!(get_secret(SourceId::new(1)).label(), Label::Src(SourceId::new(1)));
/// ```
pub fn get_secret(source: SourceId) -> TaintSet {
    TaintSet::source(source)
}

/// `P_const` — constants are not sensitive (⊥).
pub fn constant() -> TaintSet {
    TaintSet::bottom()
}

/// `P_unop` — unary operators preserve the operand's taint.
pub fn unop(operand: &TaintSet) -> TaintSet {
    operand.clone()
}

/// `P_assign` — assignment preserves the right-hand side's taint.
pub fn assign(rhs: &TaintSet) -> TaintSet {
    rhs.clone()
}

/// `P_binop` — binary operators join the taints of both operands (Fig. 2).
///
/// On the paper's lattice this is: ⊥ is the identity, `tᵢ ⊔ tᵢ = tᵢ`,
/// `tᵢ ⊔ tⱼ = ⊤` for `i ≠ j`, and ⊤ absorbs.
pub fn binop(lhs: &TaintSet, rhs: &TaintSet) -> TaintSet {
    lhs.join(rhs)
}

/// `P_cond` — a conditional branch joins the taint of the branch condition
/// into the taint of the current path constraint `π` (Fig. 2).
pub fn cond(condition: &TaintSet, path: &TaintSet) -> TaintSet {
    condition.join(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Label;

    fn src(i: u32) -> TaintSet {
        TaintSet::source(SourceId::new(i))
    }

    #[test]
    fn get_secret_mints_single_source() {
        let ts = get_secret(SourceId::new(7));
        assert!(ts.is_reversible());
        assert_eq!(ts.sole_source(), Some(SourceId::new(7)));
    }

    #[test]
    fn constants_are_bottom() {
        assert_eq!(constant().label(), Label::Bot);
    }

    #[test]
    fn unop_and_assign_preserve() {
        let ts = src(3);
        assert_eq!(unop(&ts), ts);
        assert_eq!(assign(&ts), ts);
        let top = src(1).join(&src(2));
        assert_eq!(unop(&top), top);
        assert_eq!(assign(&top), top);
    }

    /// Exhaustive check of the `P_binop` table of Fig. 2 at the Label level:
    /// every pair drawn from {⊥, t1, t2, ⊤}.
    #[test]
    fn propagation_table_binop() {
        let bot = TaintSet::bottom();
        let t1 = src(1);
        let t2 = src(2);
        let top = src(1).join(&src(2));
        let entries: [(&TaintSet, &TaintSet, Label); 16] = [
            (&bot, &bot, Label::Bot),
            (&bot, &t1, t1.label()),
            (&bot, &t2, t2.label()),
            (&bot, &top, Label::Top),
            (&t1, &bot, t1.label()),
            (&t1, &t1, t1.label()),
            (&t1, &t2, Label::Top),
            (&t1, &top, Label::Top),
            (&t2, &bot, t2.label()),
            (&t2, &t1, Label::Top),
            (&t2, &t2, t2.label()),
            (&t2, &top, Label::Top),
            (&top, &bot, Label::Top),
            (&top, &t1, Label::Top),
            (&top, &t2, Label::Top),
            (&top, &top, Label::Top),
        ];
        for (a, b, expected) in entries {
            assert_eq!(binop(a, b).label(), expected, "binop({a}, {b})");
        }
    }

    /// `P_cond` is the same join, applied to (condition, π).
    #[test]
    fn propagation_table_cond_matches_binop() {
        let samples = [TaintSet::bottom(), src(1), src(2), src(1).join(&src(2))];
        for a in &samples {
            for b in &samples {
                assert_eq!(cond(a, b), binop(a, b));
            }
        }
    }

    #[test]
    fn binop_is_commutative_and_associative_on_samples() {
        let xs = [TaintSet::bottom(), src(1), src(2), src(1).join(&src(2))];
        for a in &xs {
            for b in &xs {
                assert_eq!(binop(a, b), binop(b, a));
                for c in &xs {
                    assert_eq!(binop(&binop(a, b), c), binop(a, &binop(b, c)));
                }
            }
        }
    }
}
