//! Structured tracing and metrics for the PrivacyScope analysis stack.
//!
//! Hand-rolled, shims-only observability layer: a span/event model with a
//! buffered JSONL sink, a leveled stderr logger, and a metrics registry
//! (counters + fixed-bucket histograms). The design constraint that shapes
//! everything here is **determinism**: instrumentation must never influence
//! analysis results. Wall-clock values flow only into the trace and metrics
//! sinks — never into `Report`s, checkpoints, or any state the engine's
//! worker-count-invariance tests assert on. A disabled handle is a single
//! `None` check per call site and allocates nothing.
//!
//! # Threading model
//!
//! [`Telemetry`] is a cheap clone-able handle (`Option<Arc>`). Worker threads
//! never write to the sink directly: hot paths create plain-data
//! [`PendingSpan`]s (or nothing at all) and hand them back to the merging
//! thread, which emits them in canonical merge order at wave boundaries. The
//! only cross-thread state is the span-id counter (an atomic that feeds ids
//! into the trace output and nothing else) — so the JSONL file is
//! deterministic up to timestamps, and the analysis is deterministic, period.
//!
//! # JSONL schema
//!
//! One record per line:
//!
//! ```json
//! {"type":"span","id":7,"parent":3,"name":"wave","t_us":120,"dur_us":85,"fields":{"wave":2}}
//! {"type":"event","id":8,"parent":7,"name":"fault","t_us":130,"fields":{"kind":"truncate_out"}}
//! {"type":"log","t_us":140,"level":"warn","message":"exploration cut at wave 2"}
//! ```
//!
//! `t_us` is microseconds since the handle was built; `dur_us` is a monotonic
//! duration. Parents may be emitted *after* their children (a wave span
//! closes after its path-task spans), so consumers resolve parent links in a
//! second pass — see the `tracecheck` validator binary.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use serde::Value;

pub mod metrics;
pub mod names;

pub use metrics::{Histogram, HistogramSnapshot, MetricsSnapshot, Registry, BUCKET_BOUNDS_US};

/// Locks a mutex, recovering the guard from a poisoned lock: telemetry is
/// best-effort and must never abort an analysis because an instrumented
/// thread panicked while holding the sink.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Verbosity of the stderr logger. `Off` (the default) silences everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// No log output at all.
    #[default]
    Off,
    /// Degradations and anomalies only.
    Warn,
    /// Warnings plus per-phase progress.
    Info,
    /// Everything, including per-wave detail.
    Debug,
}

impl Level {
    /// Lower-case name as accepted by `--log-level` and emitted in records.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Error returned when parsing an unrecognized log-level name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidLevel(String);

impl std::fmt::Display for InvalidLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid log level `{}` (expected off|warn|info|debug)",
            self.0
        )
    }
}

impl std::error::Error for InvalidLevel {}

impl std::str::FromStr for Level {
    type Err = InvalidLevel;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        match text {
            "off" => Ok(Level::Off),
            "warn" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(InvalidLevel(other.to_string())),
        }
    }
}

/// A typed span/event field value. Keys are static strings so a disabled or
/// metrics-only run never formats anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// Unsigned counter-like values (sizes, counts, byte totals).
    U64(u64),
    /// Signed values.
    I64(i64),
    /// Names and labels.
    Str(String),
    /// Flags.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(value: u64) -> Self {
        FieldValue::U64(value)
    }
}

impl From<usize> for FieldValue {
    fn from(value: usize) -> Self {
        FieldValue::U64(value as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(value: u32) -> Self {
        FieldValue::U64(u64::from(value))
    }
}

impl From<i64> for FieldValue {
    fn from(value: i64) -> Self {
        FieldValue::I64(value)
    }
}

impl From<bool> for FieldValue {
    fn from(value: bool) -> Self {
        FieldValue::Bool(value)
    }
}

impl From<&str> for FieldValue {
    fn from(value: &str) -> Self {
        FieldValue::Str(value.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(value: String) -> Self {
        FieldValue::Str(value)
    }
}

impl FieldValue {
    fn to_value(&self) -> Value {
        match self {
            FieldValue::U64(v) => Value::Number(serde::Number::U64(*v)),
            FieldValue::I64(v) => Value::Number(serde::Number::I64(*v)),
            FieldValue::Str(v) => Value::String(v.clone()),
            FieldValue::Bool(v) => Value::Bool(*v),
        }
    }
}

/// An open span as plain `Send` data: created on any thread, carried across
/// a channel or task result, completed and emitted later (the trace sink is
/// only touched by [`Telemetry::emit`]). Duration is monotonic, measured on
/// the creating thread's `Instant`.
#[derive(Debug)]
pub struct PendingSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start_us: u64,
    started: Instant,
    dur_us: Option<u64>,
    fields: Vec<(&'static str, FieldValue)>,
    phase: bool,
}

impl PendingSpan {
    /// The span id, used to parent child spans and events.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attaches a key=value field. Last write wins is *not* implemented:
    /// callers attach each key once.
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        self.fields.push((key, value.into()));
    }

    /// Stamps the duration (idempotent) and returns it in microseconds.
    pub fn complete(&mut self) -> u64 {
        if self.dur_us.is_none() {
            self.dur_us = Some(self.started.elapsed().as_micros() as u64);
        }
        self.dur_us.unwrap_or(0)
    }
}

/// RAII span handle for single-threaded call sites: completes and emits the
/// span on drop (or via the more explicit [`SpanGuard::finish`]).
#[derive(Debug)]
pub struct SpanGuard {
    telemetry: Telemetry,
    record: Option<PendingSpan>,
}

impl SpanGuard {
    /// The span id if recording, for parenting children.
    pub fn id(&self) -> Option<u64> {
        self.record.as_ref().map(PendingSpan::id)
    }

    /// Attaches a key=value field (no-op when not recording).
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(record) = self.record.as_mut() {
            record.field(key, value);
        }
    }

    /// Completes and emits the span now instead of at end of scope.
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(record) = self.record.take() {
            self.telemetry.emit(record);
        }
    }
}

/// Sink configuration, normally populated from the CLI flags `--trace-out`,
/// `--metrics-out`, `--log-level`, and `--timings`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// JSONL trace destination; `None` disables span/event output.
    pub trace_out: Option<PathBuf>,
    /// End-of-run metrics summary destination; `None` disables the registry
    /// dump (counters still accumulate while any sink is enabled).
    pub metrics_out: Option<PathBuf>,
    /// stderr logger verbosity.
    pub log_level: Level,
    /// Print a human-readable per-phase timing table to stderr at
    /// [`Telemetry::finish`].
    pub timings: bool,
    /// Keep the in-memory metrics registry live even with no file sink, so
    /// [`Telemetry::metrics_snapshot`] has data to report — the daemon sets
    /// this so `Stats` frames work without `--metrics-out`. Adds no output
    /// and no stderr traffic on its own.
    pub collect_metrics: bool,
}

impl TelemetryConfig {
    /// True if any sink, logger, or in-memory collector is requested.
    pub fn is_enabled(&self) -> bool {
        self.trace_out.is_some()
            || self.metrics_out.is_some()
            || self.log_level != Level::Off
            || self.timings
            || self.collect_metrics
    }

    /// Opens the sinks and returns a live handle, or the disabled handle if
    /// nothing was requested.
    pub fn build(self) -> io::Result<Telemetry> {
        if !self.is_enabled() {
            return Ok(Telemetry::disabled());
        }
        let trace = match &self.trace_out {
            Some(path) => {
                let file: Box<dyn Write + Send> = Box::new(BufWriter::new(File::create(path)?));
                Some(Mutex::new(TraceSink(file)))
            }
            None => None,
        };
        self.build_inner(trace)
    }

    /// Opens the sinks with the trace stream routed to `writer` instead of
    /// a file — the daemon uses this to forward span/event/log records to a
    /// connected client as they happen. `writer` receives exactly the bytes
    /// a `--trace-out` file would (one JSON record per line) and is *not*
    /// wrapped in a buffer: a streaming writer does its own line framing.
    /// [`TelemetryConfig::trace_out`] is ignored on this path.
    pub fn build_streaming(self, writer: Box<dyn Write + Send>) -> io::Result<Telemetry> {
        self.build_inner(Some(Mutex::new(TraceSink(writer))))
    }

    fn build_inner(self, trace: Option<Mutex<TraceSink>>) -> io::Result<Telemetry> {
        Ok(Telemetry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                level: self.log_level,
                timings: self.timings,
                next_id: AtomicU64::new(1),
                trace,
                metrics: Mutex::new(Registry::new()),
                metrics_out: self.metrics_out,
                phases: Mutex::new(Vec::new()),
                finished: AtomicBool::new(false),
            })),
        })
    }
}

#[derive(Debug)]
struct PhaseTiming {
    name: &'static str,
    calls: u64,
    total_us: u64,
}

/// The trace destination: a buffered file for `--trace-out`, or any other
/// `Write + Send` (e.g. a daemon connection forwarder) via
/// [`TelemetryConfig::build_streaming`].
struct TraceSink(Box<dyn Write + Send>);

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TraceSink")
    }
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    level: Level,
    timings: bool,
    next_id: AtomicU64,
    trace: Option<Mutex<TraceSink>>,
    metrics: Mutex<Registry>,
    metrics_out: Option<PathBuf>,
    phases: Mutex<Vec<PhaseTiming>>,
    finished: AtomicBool,
}

/// Handle to the telemetry sinks. Cheap to clone; a disabled handle (the
/// default) reduces every operation to one `Option` check with zero
/// allocation, which is what lets it live inside engine configuration
/// structs without a measurable hot-loop cost.
///
/// All handles compare equal: like a cancellation token, a telemetry handle
/// is a control/observation channel, not configuration — embedding it must
/// not perturb config equality or checkpoint fingerprints.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl PartialEq for Telemetry {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for Telemetry {}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Telemetry {
    /// The inert handle: every operation is a no-op.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// True when any sink or logger is live.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// True when span/event records are being written.
    pub fn tracing(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|inner| inner.trace.is_some())
    }

    fn start(&self, name: &'static str, parent: Option<u64>, phase: bool) -> PendingSpan {
        let (id, start_us) = match &self.inner {
            Some(inner) => (
                inner.next_id.fetch_add(1, Ordering::Relaxed),
                inner.epoch.elapsed().as_micros() as u64,
            ),
            None => (0, 0),
        };
        PendingSpan {
            id,
            parent,
            name,
            start_us,
            started: Instant::now(),
            dur_us: None,
            fields: Vec::new(),
            phase,
        }
    }

    /// Opens a span as plain data for deferred emission, or `None` when the
    /// trace sink is off (the caller then skips all field bookkeeping).
    pub fn begin(&self, name: &'static str, parent: Option<u64>) -> Option<PendingSpan> {
        if self.tracing() {
            Some(self.start(name, parent, false))
        } else {
            None
        }
    }

    /// RAII span for single-threaded call sites.
    pub fn span(&self, name: &'static str, parent: Option<u64>) -> SpanGuard {
        SpanGuard {
            record: self.begin(name, parent),
            telemetry: self.clone(),
        }
    }

    /// RAII span that additionally feeds the `--timings` table. Recorded
    /// whenever tracing *or* timings are on.
    pub fn phase(&self, name: &'static str, parent: Option<u64>) -> SpanGuard {
        let wants = self.tracing() || self.inner.as_ref().is_some_and(|inner| inner.timings);
        SpanGuard {
            record: wants.then(|| self.start(name, parent, true)),
            telemetry: self.clone(),
        }
    }

    /// Completes (if needed) and writes out a span record. Safe to call from
    /// any thread; intended to be called from the canonical merge order so
    /// the record sequence is deterministic up to timestamps.
    pub fn emit(&self, mut record: PendingSpan) {
        let Some(inner) = &self.inner else { return };
        let dur_us = record.complete();
        if record.phase {
            let mut phases = lock(&inner.phases);
            match phases.iter_mut().find(|timing| timing.name == record.name) {
                Some(timing) => {
                    timing.calls += 1;
                    timing.total_us += dur_us;
                }
                None => phases.push(PhaseTiming {
                    name: record.name,
                    calls: 1,
                    total_us: dur_us,
                }),
            }
        }
        if inner.trace.is_some() {
            let mut pairs = vec![
                ("type", Value::String("span".to_string())),
                ("id", Value::Number(serde::Number::U64(record.id))),
                (
                    "parent",
                    match record.parent {
                        Some(parent) => Value::Number(serde::Number::U64(parent)),
                        None => Value::Null,
                    },
                ),
                ("name", Value::String(record.name.to_string())),
                ("t_us", Value::Number(serde::Number::U64(record.start_us))),
                ("dur_us", Value::Number(serde::Number::U64(dur_us))),
            ];
            if !record.fields.is_empty() {
                pairs.push(("fields", fields_value(&record.fields)));
            }
            self.write_record(inner, pairs);
        }
    }

    /// Emits an instantaneous event. The field-filling closure only runs
    /// when the trace sink is live, so disabled runs pay nothing.
    pub fn event(
        &self,
        name: &'static str,
        parent: Option<u64>,
        fill: impl FnOnce(&mut Vec<(&'static str, FieldValue)>),
    ) {
        let Some(inner) = &self.inner else { return };
        if inner.trace.is_none() {
            return;
        }
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let t_us = inner.epoch.elapsed().as_micros() as u64;
        let mut fields = Vec::new();
        fill(&mut fields);
        let mut pairs = vec![
            ("type", Value::String("event".to_string())),
            ("id", Value::Number(serde::Number::U64(id))),
            (
                "parent",
                match parent {
                    Some(parent) => Value::Number(serde::Number::U64(parent)),
                    None => Value::Null,
                },
            ),
            ("name", Value::String(name.to_string())),
            ("t_us", Value::Number(serde::Number::U64(t_us))),
        ];
        if !fields.is_empty() {
            pairs.push(("fields", fields_value(&fields)));
        }
        self.write_record(inner, pairs);
    }

    fn write_record(&self, inner: &Inner, pairs: Vec<(&'static str, Value)>) {
        let Some(trace) = &inner.trace else { return };
        let value = Value::Object(
            pairs
                .into_iter()
                .map(|(key, value)| (key.to_string(), value))
                .collect(),
        );
        if let Ok(line) = serde_json::to_string(&value) {
            let mut sink = lock(trace);
            // Best-effort: a full disk must degrade the trace, not the run.
            let _ = sink.0.write_all(line.as_bytes());
            let _ = sink.0.write_all(b"\n");
        }
    }

    /// Adds `delta` to a named counter.
    pub fn counter(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            lock(&inner.metrics).add(name, delta);
        }
    }

    /// Records one observation into a named fixed-bucket histogram
    /// (microsecond-scaled bounds).
    pub fn observe(&self, name: &'static str, value_us: u64) {
        if let Some(inner) = &self.inner {
            lock(&inner.metrics).observe(name, value_us);
        }
    }

    /// Log at `warn`: degradations and anomalies.
    pub fn warn(&self, message: impl FnOnce() -> String) {
        self.log(Level::Warn, message);
    }

    /// Log at `info`: phase progress.
    pub fn info(&self, message: impl FnOnce() -> String) {
        self.log(Level::Info, message);
    }

    /// Log at `debug`: per-wave detail.
    pub fn debug(&self, message: impl FnOnce() -> String) {
        self.log(Level::Debug, message);
    }

    fn log(&self, level: Level, message: impl FnOnce() -> String) {
        let Some(inner) = &self.inner else { return };
        if inner.level < level {
            return;
        }
        let text = message();
        eprintln!("[privacyscope {}] {text}", level.as_str());
        if inner.trace.is_some() {
            let t_us = inner.epoch.elapsed().as_micros() as u64;
            let pairs = vec![
                ("type", Value::String("log".to_string())),
                ("t_us", Value::Number(serde::Number::U64(t_us))),
                ("level", Value::String(level.as_str().to_string())),
                ("message", Value::String(text)),
            ];
            self.write_record(inner, pairs);
        }
    }

    /// Flushes the trace, writes the metrics summary, and prints the timing
    /// table. Idempotent; later calls are no-ops. The `Drop` of the last
    /// handle flushes the trace too, but only an explicit `finish` writes
    /// `--metrics-out` and `--timings`.
    pub fn finish(&self) -> io::Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.finished.swap(true, Ordering::SeqCst) {
            return Ok(());
        }
        if let Some(trace) = &inner.trace {
            lock(trace).0.flush()?;
        }
        if let Some(path) = &inner.metrics_out {
            let summary = lock(&inner.metrics).to_value();
            let text = serde_json::to_string_pretty(&summary)
                .map_err(|error| io::Error::other(error.to_string()))?;
            std::fs::write(path, text + "\n")?;
        }
        if inner.timings {
            let phases = lock(&inner.phases);
            let mut err = io::stderr().lock();
            let _ = writeln!(err, "── timings ──────────────────────────────");
            let _ = writeln!(err, "{:<16} {:>8} {:>14}", "phase", "calls", "total (ms)");
            for timing in phases.iter() {
                let _ = writeln!(
                    err,
                    "{:<16} {:>8} {:>14.3}",
                    timing.name,
                    timing.calls,
                    timing.total_us as f64 / 1000.0
                );
            }
        }
        Ok(())
    }

    /// Snapshot of a counter's current value (testing/diagnostics).
    pub fn counter_value(&self, name: &str) -> u64 {
        match &self.inner {
            Some(inner) => lock(&inner.metrics).counter_value(name),
            None => 0,
        }
    }

    /// A point-in-time copy of the whole metrics registry, in deterministic
    /// (sorted-name) order — what `Stats` frames and `--stats-out` embed.
    /// Empty for a disabled handle.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => lock(&inner.metrics).snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// A scope guard that runs [`Telemetry::finish`] when dropped — on
    /// *every* exit path, including early `?` returns and unwinding panics.
    /// Drivers install one right after building the handle so a usage error
    /// (exit 2) or a crash still leaves a flushed, parseable trace and a
    /// written metrics summary. `finish` is idempotent, so the guard
    /// composes with an explicit success-path call.
    pub fn flush_guard(&self) -> FlushGuard {
        FlushGuard {
            telemetry: self.clone(),
        }
    }
}

/// See [`Telemetry::flush_guard`].
#[derive(Debug)]
pub struct FlushGuard {
    telemetry: Telemetry,
}

impl Drop for FlushGuard {
    fn drop(&mut self) {
        // Best-effort by design: there is no way to report a flush failure
        // from a drop on an already-failing exit path.
        let _ = self.telemetry.finish();
    }
}

fn fields_value(fields: &[(&'static str, FieldValue)]) -> Value {
    Value::Object(
        fields
            .iter()
            .map(|(key, value)| (key.to_string(), value.to_value()))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("telemetry_test_{}_{tag}.jsonl", std::process::id()))
    }

    #[test]
    fn level_parses_and_orders() {
        assert_eq!("off".parse::<Level>(), Ok(Level::Off));
        assert_eq!("warn".parse::<Level>(), Ok(Level::Warn));
        assert_eq!("info".parse::<Level>(), Ok(Level::Info));
        assert_eq!("debug".parse::<Level>(), Ok(Level::Debug));
        assert!("verbose".parse::<Level>().is_err());
        assert!(
            Level::Off < Level::Warn && Level::Warn < Level::Info && Level::Info < Level::Debug
        );
    }

    #[test]
    fn disabled_handle_is_inert() {
        let telemetry = Telemetry::disabled();
        assert!(!telemetry.is_enabled());
        assert!(!telemetry.tracing());
        assert!(telemetry.begin("x", None).is_none());
        let mut guard = telemetry.span("x", None);
        assert_eq!(guard.id(), None);
        guard.field("k", 1u64);
        guard.finish();
        telemetry.counter("c", 1);
        telemetry.event("e", None, |_| {});
        assert_eq!(telemetry.counter_value("c"), 0);
        assert!(telemetry.finish().is_ok());
    }

    #[test]
    fn handles_compare_equal() {
        let config = TelemetryConfig {
            timings: true,
            ..TelemetryConfig::default()
        };
        let live = config.build().expect("builds");
        assert_eq!(live, Telemetry::disabled());
    }

    #[test]
    fn trace_sink_writes_parseable_jsonl() {
        let path = temp_path("sink");
        let telemetry = TelemetryConfig {
            trace_out: Some(path.clone()),
            ..TelemetryConfig::default()
        }
        .build()
        .expect("builds");
        let mut root = telemetry.span("root", None);
        root.field("answer", 42u64);
        let root_id = root.id();
        telemetry.event("ping", root_id, |fields| {
            fields.push(("kind", FieldValue::from("test")));
        });
        let mut child = telemetry.begin("child", root_id).expect("tracing");
        child.field("flag", true);
        telemetry.emit(child);
        root.finish();
        telemetry.finish().expect("finishes");

        let text = std::fs::read_to_string(&path).expect("trace written");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "event + child + root: {text}");
        for line in &lines {
            let value = serde_json::parse(line).expect("line parses");
            assert!(matches!(value, Value::Object(_)));
        }
        // The root span closes last, after its children — by design.
        assert!(lines[2].contains("\"name\": \"root\"") || lines[2].contains("\"name\":\"root\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_summary_is_written_on_finish() {
        let path = temp_path("metrics");
        let telemetry = TelemetryConfig {
            metrics_out: Some(path.clone()),
            ..TelemetryConfig::default()
        }
        .build()
        .expect("builds");
        telemetry.counter("engine.waves", 2);
        telemetry.counter("engine.waves", 3);
        telemetry.observe("engine.wave_us", 100);
        assert_eq!(telemetry.counter_value("engine.waves"), 5);
        telemetry.finish().expect("finishes");
        telemetry.finish().expect("idempotent");

        let text = std::fs::read_to_string(&path).expect("metrics written");
        let value = serde_json::parse(&text).expect("metrics parse");
        let waves = match &value["counters"]["engine.waves"] {
            Value::Number(number) => number.as_u64(),
            _ => None,
        };
        assert_eq!(waves, Some(5));
        assert!(matches!(
            value["histograms"]["engine.wave_us"],
            Value::Object(_)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flush_guard_finishes_on_drop_and_unwind() {
        let path = temp_path("guard_metrics");
        let telemetry = TelemetryConfig {
            metrics_out: Some(path.clone()),
            ..TelemetryConfig::default()
        }
        .build()
        .expect("builds");
        telemetry.counter("guarded", 7);
        let inner = telemetry.clone();
        let panicked = std::panic::catch_unwind(move || {
            let _guard = inner.flush_guard();
            panic!("simulated driver crash");
        });
        assert!(panicked.is_err());
        let text = std::fs::read_to_string(&path).expect("metrics written despite panic");
        let value = serde_json::parse(&text).expect("metrics parse");
        assert!(matches!(value["counters"]["guarded"], Value::Number(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_sink_receives_trace_lines() {
        #[derive(Clone, Default)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                lock(&self.0).extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let shared = Shared::default();
        let telemetry = TelemetryConfig::default()
            .build_streaming(Box::new(shared.clone()))
            .expect("builds");
        assert!(telemetry.tracing());
        telemetry.event("ping", None, |fields| {
            fields.push(("kind", FieldValue::from("stream")));
        });
        telemetry.finish().expect("finishes");
        let bytes = lock(&shared.0).clone();
        let text = String::from_utf8(bytes).expect("utf-8");
        let line = text.lines().next().expect("one record");
        let value = serde_json::parse(line).expect("record parses");
        assert!(matches!(value, Value::Object(_)));
        assert!(line.contains("ping"));
    }

    #[test]
    fn phase_spans_record_without_trace_sink() {
        let telemetry = TelemetryConfig {
            timings: true,
            ..TelemetryConfig::default()
        }
        .build()
        .expect("builds");
        assert!(!telemetry.tracing());
        let phase = telemetry.phase("parse", None);
        assert!(phase.id().is_some(), "phase spans record for --timings");
        phase.finish();
        // Plain spans stay off without a trace sink.
        assert!(telemetry.span("wave", None).id().is_none());
    }
}
