//! The canonical telemetry metric namespace.
//!
//! Every counter and histogram name used anywhere in the stack lives here,
//! as a `&'static str` constant, so `--metrics-out` summaries, `Stats`
//! wire frames, and `--stats-out` dumps all agree byte-for-byte on the
//! names — and so a grep for a name has exactly one definition to find.
//!
//! Naming convention: `<component>.<event>[_<unit>]`, lower-snake within
//! segments. Histogram names end in a unit suffix (`_us`); counters do
//! not. Components:
//!
//! * `engine.*` — symbolic-execution engine (per-run exploration work)
//! * `analyzer.*` — the leak analyzer driving the engine
//! * `service.*` — the daemon's job service (admission, lifecycle,
//!   recovery)
//! * `daemon.*` — the wire front-end (framing, connection hygiene)
//! * `sgx.*` — the SGX enclave-boundary simulator

// ── engine.* ────────────────────────────────────────────────────────────

/// Waves (top-level statements) executed.
pub const ENGINE_WAVES: &str = "engine.waves";
/// Statements interpreted.
pub const ENGINE_STEPS: &str = "engine.steps";
/// Two-sided state forks.
pub const ENGINE_FORKS: &str = "engine.forks";
/// Branch sides pruned as infeasible.
pub const ENGINE_INFEASIBLE: &str = "engine.infeasible";
/// Loop widenings applied.
pub const ENGINE_WIDENINGS: &str = "engine.widenings";
/// Feasibility probes answered from the memoized probe set.
pub const ENGINE_CACHE_HITS: &str = "engine.cache_hits";
/// Feasibility probes computed fresh.
pub const ENGINE_CACHE_MISSES: &str = "engine.cache_misses";
/// Branch sides refuted by the Tier-1 interval/congruence domain.
pub const ENGINE_TIER1_REFUTED: &str = "engine.tier_one_refuted";
/// Branch sides refuted by the Tier-2 SAT-lite solver.
pub const ENGINE_TIER2_REFUTED: &str = "engine.tier_two_refuted";
/// Tier-2 invocations that exhausted their deterministic budget.
pub const ENGINE_TIER2_UNKNOWN: &str = "engine.tier_two_unknown";
/// Path tasks executed by the worklist.
pub const ENGINE_PATH_TASKS: &str = "engine.path_tasks";
/// Checkpoint snapshots written.
pub const ENGINE_CHECKPOINT_WRITES: &str = "engine.checkpoint_writes";
/// Histogram: wall-clock per wave, microseconds.
pub const ENGINE_WAVE_US: &str = "engine.wave_us";
/// Histogram: wall-clock per path task, microseconds.
pub const ENGINE_PATH_TASK_US: &str = "engine.path_task_us";

// ── analyzer.* ──────────────────────────────────────────────────────────

/// Target functions analyzed.
pub const ANALYZER_TARGETS: &str = "analyzer.targets";
/// Nonreversibility findings reported.
pub const ANALYZER_FINDINGS: &str = "analyzer.findings";

// ── service.* ───────────────────────────────────────────────────────────

/// Jobs rejected at admission (all causes; the `.…` variants below break
/// the total down by cause).
pub const SERVICE_REJECTED: &str = "service.rejected";
/// Rejected: queue at capacity.
pub const SERVICE_REJECTED_QUEUE_FULL: &str = "service.rejected.queue_full";
/// Rejected: declared path budget over the admission ceiling.
pub const SERVICE_REJECTED_PATH_BUDGET: &str = "service.rejected.path_budget";
/// Rejected: service draining for shutdown.
pub const SERVICE_REJECTED_DRAINING: &str = "service.rejected.draining";
/// Jobs cancelled (client request or disconnect policy).
pub const SERVICE_CANCELLED: &str = "service.cancelled";
/// Jobs parked (suspended on disconnect, resumable).
pub const SERVICE_PARKED: &str = "service.parked";
/// Jobs suspended by the fair-share scheduler.
pub const SERVICE_SUSPENDED: &str = "service.suspended";
/// Journal append failures (job proceeded; durability degraded).
pub const SERVICE_JOURNAL_FAILED: &str = "service.journal_failed";
/// Crash recovery: queued jobs re-queued from the journal.
pub const SERVICE_RECOVERY_REQUEUED: &str = "service.recovery.requeued";
/// Crash recovery: running jobs resumed from their spooled checkpoint.
pub const SERVICE_RECOVERY_RESUMED: &str = "service.recovery.resumed";
/// Crash recovery: orphaned spool files removed.
pub const SERVICE_RECOVERY_ORPHANS_REMOVED: &str = "service.recovery.orphans_removed";
/// Crash recovery: journal entries that could not be recovered.
pub const SERVICE_RECOVERY_ERRORS: &str = "service.recovery.errors";

// ── daemon.* ────────────────────────────────────────────────────────────

/// Frames dropped for exceeding the size limit.
pub const DAEMON_FRAME_OVERSIZED: &str = "daemon.frame_oversized";
/// Frames that failed to parse.
pub const DAEMON_FRAME_MALFORMED: &str = "daemon.frame_malformed";
/// Connections closed by the idle timeout.
pub const DAEMON_IDLE_TIMEOUT: &str = "daemon.idle_timeout";
/// Jobs cancelled because their client disconnected.
pub const DAEMON_DISCONNECT_CANCELLED: &str = "daemon.disconnect_cancelled";
/// Jobs parked because their client disconnected.
pub const DAEMON_DISCONNECT_PARKED: &str = "daemon.disconnect_parked";

// ── sgx.* ───────────────────────────────────────────────────────────────

/// ECALLs crossing into the simulated enclave.
pub const SGX_ECALLS: &str = "sgx.ecalls";
/// OCALLs crossing out of the simulated enclave.
pub const SGX_OCALLS: &str = "sgx.ocalls";
/// Bytes copied out across the boundary.
pub const SGX_OUT_BYTES: &str = "sgx.out_bytes";
/// Injected boundary faults observed.
pub const SGX_FAULTS: &str = "sgx.faults";
/// Boundary calls retried after a transient fault.
pub const SGX_RETRIES: &str = "sgx.retries";

/// Every counter name, in summary order — the audit surface: a name used
/// at a call site but missing here (or vice versa) fails the namespace
/// test.
pub const ALL_COUNTERS: &[&str] = &[
    ANALYZER_FINDINGS,
    ANALYZER_TARGETS,
    DAEMON_DISCONNECT_CANCELLED,
    DAEMON_DISCONNECT_PARKED,
    DAEMON_FRAME_MALFORMED,
    DAEMON_FRAME_OVERSIZED,
    DAEMON_IDLE_TIMEOUT,
    ENGINE_CACHE_HITS,
    ENGINE_CACHE_MISSES,
    ENGINE_CHECKPOINT_WRITES,
    ENGINE_FORKS,
    ENGINE_INFEASIBLE,
    ENGINE_PATH_TASKS,
    ENGINE_STEPS,
    ENGINE_TIER1_REFUTED,
    ENGINE_TIER2_REFUTED,
    ENGINE_TIER2_UNKNOWN,
    ENGINE_WAVES,
    ENGINE_WIDENINGS,
    SERVICE_CANCELLED,
    SERVICE_JOURNAL_FAILED,
    SERVICE_PARKED,
    SERVICE_RECOVERY_ERRORS,
    SERVICE_RECOVERY_ORPHANS_REMOVED,
    SERVICE_RECOVERY_REQUEUED,
    SERVICE_RECOVERY_RESUMED,
    SERVICE_REJECTED,
    SERVICE_REJECTED_DRAINING,
    SERVICE_REJECTED_PATH_BUDGET,
    SERVICE_REJECTED_QUEUE_FULL,
    SERVICE_SUSPENDED,
    SGX_ECALLS,
    SGX_FAULTS,
    SGX_OCALLS,
    SGX_OUT_BYTES,
    SGX_RETRIES,
];

/// Every histogram name, in summary order.
pub const ALL_HISTOGRAMS: &[&str] = &[ENGINE_PATH_TASK_US, ENGINE_WAVE_US];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_well_formed_and_sorted() {
        for name in ALL_COUNTERS.iter().chain(ALL_HISTOGRAMS) {
            assert!(
                name.split('.').count() >= 2,
                "{name}: needs a component prefix"
            );
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c == '.' || c == '_'),
                "{name}: lower-snake segments only"
            );
            assert!(!name.ends_with('.') && !name.starts_with('.'), "{name}");
        }
        let mut sorted = ALL_COUNTERS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, ALL_COUNTERS, "ALL_COUNTERS sorted and unique");
        for histogram in ALL_HISTOGRAMS {
            assert!(
                histogram.ends_with("_us"),
                "{histogram}: histograms carry a unit suffix"
            );
            assert!(!ALL_COUNTERS.contains(histogram));
        }
    }
}
