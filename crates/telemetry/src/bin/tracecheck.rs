//! Schema validator for telemetry output, used by the CI observability
//! smoke step (a small Rust binary so CI needs no `jq`).
//!
//! Usage: `tracecheck [--profile <profile.json>] [--stats <stats.jsonl>]
//!                    [<trace.jsonl> [metrics.json]]`
//!
//! Validates every trace JSONL line against the record schema documented
//! in the `telemetry` crate: `span` records carry `id`/`parent`/`name`/
//! `t_us`/`dur_us`, `event` records the same minus `dur_us`, `log` records
//! carry `level`/`message`. Because a parent span closes — and is therefore
//! written — *after* its children, parent links are resolved in a second
//! pass over the collected span ids.
//!
//! `--profile` validates a `privacyscope --profile-out` document: a
//! `profiles` array whose entries carry a `function` and line-ordered
//! `rows`, each row with the full seven-counter `counters` object and at
//! least one nonzero counter (empty sites are never emitted).
//!
//! `--stats` validates a `privacyscoped --stats-out` JSONL stream: every
//! record carries a monotone `ts_ms`, a `service` snapshot (queue depth,
//! pool ≥ busy, id-ordered jobs), and a `metrics` snapshot whose counter
//! names are sorted-unique and whose histograms satisfy the bucket
//! invariants (`counts` = bounds + overflow, summing to `count`).
//!
//! Exits 0 and prints a one-line summary on success; prints the offending
//! line number and reason and exits 1 on the first violation.

use std::collections::BTreeSet;
use std::process::ExitCode;

use serde_json::Value;

fn get<'a>(object: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    object
        .iter()
        .find(|(name, _)| name == key)
        .map(|(_, value)| value)
}

fn as_u64(value: &Value) -> Option<u64> {
    match value {
        Value::Number(number) => number.as_u64(),
        _ => None,
    }
}

fn as_str(value: &Value) -> Option<&str> {
    match value {
        Value::String(text) => Some(text.as_str()),
        _ => None,
    }
}

fn check_fields(object: &[(String, Value)]) -> Result<(), String> {
    match get(object, "fields") {
        None => Ok(()),
        Some(Value::Object(fields)) => {
            for (key, value) in fields {
                match value {
                    Value::String(_) | Value::Number(_) | Value::Bool(_) => {}
                    other => {
                        return Err(format!(
                            "field `{key}` must be a string, number, or bool, got {other:?}"
                        ))
                    }
                }
            }
            Ok(())
        }
        Some(other) => Err(format!("`fields` must be an object, got {other:?}")),
    }
}

struct Summary {
    spans: usize,
    events: usize,
    logs: usize,
    span_ids: BTreeSet<u64>,
    /// (line number, parent id) pairs to resolve once all spans are known.
    parents: Vec<(usize, u64)>,
}

fn check_line(line: &str, lineno: usize, summary: &mut Summary) -> Result<(), String> {
    let value =
        serde_json::parse(line).map_err(|error| format!("does not parse as JSON: {error}"))?;
    let Value::Object(object) = &value else {
        return Err("record is not a JSON object".to_string());
    };
    let kind = get(object, "type")
        .and_then(as_str)
        .ok_or("missing string `type`")?;
    get(object, "t_us")
        .and_then(as_u64)
        .ok_or("missing u64 `t_us`")?;
    match kind {
        "span" | "event" => {
            let id = get(object, "id")
                .and_then(as_u64)
                .ok_or("missing u64 `id`")?;
            let name = get(object, "name")
                .and_then(as_str)
                .ok_or("missing string `name`")?;
            if name.is_empty() {
                return Err("empty `name`".to_string());
            }
            match get(object, "parent") {
                Some(Value::Null) | None => {}
                Some(parent) => {
                    let parent = as_u64(parent).ok_or("`parent` must be null or a u64")?;
                    summary.parents.push((lineno, parent));
                }
            }
            check_fields(object)?;
            if kind == "span" {
                get(object, "dur_us")
                    .and_then(as_u64)
                    .ok_or("span missing u64 `dur_us`")?;
                if !summary.span_ids.insert(id) {
                    return Err(format!("duplicate span id {id}"));
                }
                summary.spans += 1;
            } else {
                summary.events += 1;
            }
        }
        "log" => {
            let level = get(object, "level")
                .and_then(as_str)
                .ok_or("log missing string `level`")?;
            if !matches!(level, "warn" | "info" | "debug") {
                return Err(format!("unknown log level `{level}`"));
            }
            get(object, "message")
                .and_then(as_str)
                .ok_or("log missing string `message`")?;
            summary.logs += 1;
        }
        other => return Err(format!("unknown record type `{other}`")),
    }
    Ok(())
}

fn check_trace(path: &str) -> Result<Summary, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|error| format!("{path}: cannot read trace: {error}"))?;
    let mut summary = Summary {
        spans: 0,
        events: 0,
        logs: 0,
        span_ids: BTreeSet::new(),
        parents: Vec::new(),
    };
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        check_line(line, index + 1, &mut summary)
            .map_err(|reason| format!("{path}:{}: {reason}", index + 1))?;
    }
    // Second pass: every parent link must point at an emitted span. Parents
    // legitimately appear after their children in the file (a wave span
    // closes after its path-task spans), hence the deferred resolution.
    for (lineno, parent) in &summary.parents {
        if !summary.span_ids.contains(parent) {
            return Err(format!(
                "{path}:{lineno}: parent {parent} is not an emitted span id"
            ));
        }
    }
    Ok(summary)
}

fn check_metrics(path: &str) -> Result<(usize, usize), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|error| format!("{path}: cannot read metrics: {error}"))?;
    let value =
        serde_json::parse(&text).map_err(|error| format!("{path}: does not parse: {error}"))?;
    let Value::Object(object) = &value else {
        return Err(format!("{path}: summary is not a JSON object"));
    };
    let Some(Value::Object(counters)) = get(object, "counters") else {
        return Err(format!("{path}: missing `counters` object"));
    };
    for (name, value) in counters {
        as_u64(value).ok_or(format!("{path}: counter `{name}` is not a u64"))?;
    }
    let Some(Value::Object(histograms)) = get(object, "histograms") else {
        return Err(format!("{path}: missing `histograms` object"));
    };
    for (name, value) in histograms {
        let Value::Object(histogram) = value else {
            return Err(format!("{path}: histogram `{name}` is not an object"));
        };
        check_histogram_body(name, histogram).map_err(|reason| format!("{path}: {reason}"))?;
    }
    Ok((counters.len(), histograms.len()))
}

/// Shared histogram bucket invariants, used by both the end-of-run metrics
/// summary (`histograms` object) and the live `metrics` snapshot embedded
/// in stats records (`histograms` array): `counts` has one bucket per
/// bound plus the overflow bucket, and the buckets sum to `count`.
fn check_histogram_body(name: &str, histogram: &[(String, Value)]) -> Result<(), String> {
    let Some(Value::Array(bounds)) = get(histogram, "bounds_us") else {
        return Err(format!("histogram `{name}` missing `bounds_us`"));
    };
    let Some(Value::Array(counts)) = get(histogram, "counts") else {
        return Err(format!("histogram `{name}` missing `counts`"));
    };
    if counts.len() != bounds.len() + 1 {
        return Err(format!(
            "histogram `{name}` needs {} counts (bounds + overflow), got {}",
            bounds.len() + 1,
            counts.len()
        ));
    }
    let mut previous_bound: Option<u64> = None;
    for bound in bounds {
        let bound = as_u64(bound).ok_or(format!("histogram `{name}` non-u64 bound"))?;
        if previous_bound.is_some_and(|p| p >= bound) {
            return Err(format!(
                "histogram `{name}` bounds are not strictly increasing"
            ));
        }
        previous_bound = Some(bound);
    }
    let mut tallied: u64 = 0;
    for count in counts {
        tallied += as_u64(count).ok_or(format!("histogram `{name}` non-u64 count"))?;
    }
    let declared = get(histogram, "count")
        .and_then(as_u64)
        .ok_or(format!("histogram `{name}` missing u64 `count`"))?;
    if tallied != declared {
        return Err(format!(
            "histogram `{name}` bucket counts sum to {tallied}, `count` says {declared}"
        ));
    }
    get(histogram, "sum_us")
        .and_then(as_u64)
        .ok_or(format!("histogram `{name}` missing u64 `sum_us`"))?;
    Ok(())
}

/// The ten per-site counters a profile row must carry, in the order
/// `symexec::profile::SiteCounters` declares them.
const PROFILE_COUNTERS: [&str; 10] = [
    "steps",
    "forks",
    "infeasible",
    "widenings",
    "cache_hits",
    "cache_misses",
    "secret_branches",
    "tier1_refuted",
    "tier2_refuted",
    "tier2_unknown",
];

/// Validates a `privacyscope --profile-out` document. Returns
/// (profiles, rows).
fn check_profile(path: &str) -> Result<(usize, usize), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|error| format!("{path}: cannot read profile: {error}"))?;
    let value =
        serde_json::parse(&text).map_err(|error| format!("{path}: does not parse: {error}"))?;
    let Value::Object(document) = &value else {
        return Err(format!("{path}: document is not a JSON object"));
    };
    let Some(Value::Array(profiles)) = get(document, "profiles") else {
        return Err(format!("{path}: missing `profiles` array"));
    };
    let mut total_rows = 0usize;
    for (index, profile) in profiles.iter().enumerate() {
        let label = format!("{path}: profiles[{index}]");
        let Value::Object(profile) = profile else {
            return Err(format!("{label}: not a JSON object"));
        };
        let target = get(profile, "function")
            .and_then(as_str)
            .ok_or(format!("{label}: missing string `function`"))?;
        if target.is_empty() {
            return Err(format!("{label}: empty `function`"));
        }
        let Some(Value::Array(rows)) = get(profile, "rows") else {
            return Err(format!("{label}: missing `rows` array"));
        };
        let mut previous_line = 0u64;
        for (row_index, row) in rows.iter().enumerate() {
            let label = format!("{label}.rows[{row_index}]");
            let Value::Object(row) = row else {
                return Err(format!("{label}: not a JSON object"));
            };
            get(row, "function")
                .and_then(as_str)
                .ok_or(format!("{label}: missing string `function`"))?;
            let line = get(row, "line")
                .and_then(as_u64)
                .ok_or(format!("{label}: missing u64 `line`"))?;
            if line == 0 {
                return Err(format!("{label}: `line` is 0 (lines are 1-based)"));
            }
            if line < previous_line {
                return Err(format!("{label}: rows are not in line order"));
            }
            previous_line = line;
            get(row, "text")
                .and_then(as_str)
                .ok_or(format!("{label}: missing string `text`"))?;
            let Some(Value::Object(counters)) = get(row, "counters") else {
                return Err(format!("{label}: missing `counters` object"));
            };
            let mut any_nonzero = false;
            for counter in PROFILE_COUNTERS {
                let count = get(counters, counter)
                    .and_then(as_u64)
                    .ok_or(format!("{label}: counters missing u64 `{counter}`"))?;
                any_nonzero |= count > 0;
            }
            if !any_nonzero {
                return Err(format!(
                    "{label}: all counters are zero (empty sites are never emitted)"
                ));
            }
            total_rows += 1;
        }
    }
    Ok((profiles.len(), total_rows))
}

/// Validates one `service` snapshot inside a stats record.
fn check_service_snapshot(label: &str, service: &[(String, Value)]) -> Result<(), String> {
    let pool = get(service, "pool")
        .and_then(as_u64)
        .ok_or(format!("{label}: service missing u64 `pool`"))?;
    let busy = get(service, "busy")
        .and_then(as_u64)
        .ok_or(format!("{label}: service missing u64 `busy`"))?;
    if busy > pool {
        return Err(format!("{label}: busy {busy} exceeds pool {pool}"));
    }
    get(service, "queue_depth")
        .and_then(as_u64)
        .ok_or(format!("{label}: service missing u64 `queue_depth`"))?;
    if !matches!(get(service, "draining"), Some(Value::Bool(_))) {
        return Err(format!("{label}: service missing bool `draining`"));
    }
    let Some(Value::Array(jobs)) = get(service, "jobs") else {
        return Err(format!("{label}: service missing `jobs` array"));
    };
    let mut previous_id: Option<u64> = None;
    for (index, job) in jobs.iter().enumerate() {
        let label = format!("{label}.jobs[{index}]");
        let Value::Object(job) = job else {
            return Err(format!("{label}: not a JSON object"));
        };
        let id = get(job, "id")
            .and_then(as_u64)
            .ok_or(format!("{label}: missing u64 `id`"))?;
        if previous_id.is_some_and(|p| p >= id) {
            return Err(format!("{label}: job ids are not strictly increasing"));
        }
        previous_id = Some(id);
        let state = get(job, "state")
            .and_then(as_str)
            .ok_or(format!("{label}: missing string `state`"))?;
        if state.is_empty() {
            return Err(format!("{label}: empty `state`"));
        }
        for field in ["suspensions", "waves", "frontier", "steps"] {
            get(job, field)
                .and_then(as_u64)
                .ok_or(format!("{label}: missing u64 `{field}`"))?;
        }
    }
    Ok(())
}

/// Validates one `metrics` snapshot inside a stats record: sorted-unique
/// counter names and well-formed histograms.
fn check_metrics_snapshot(label: &str, metrics: &[(String, Value)]) -> Result<(), String> {
    let Some(Value::Array(counters)) = get(metrics, "counters") else {
        return Err(format!("{label}: metrics missing `counters` array"));
    };
    let mut previous_name: Option<&str> = None;
    for (index, pair) in counters.iter().enumerate() {
        let Value::Array(pair) = pair else {
            return Err(format!(
                "{label}.counters[{index}]: not a [name, value] pair"
            ));
        };
        let [name, value] = pair.as_slice() else {
            return Err(format!(
                "{label}.counters[{index}]: not a [name, value] pair"
            ));
        };
        let name = as_str(name).ok_or(format!("{label}.counters[{index}]: non-string name"))?;
        as_u64(value).ok_or(format!("{label}.counters[{index}]: non-u64 value"))?;
        if previous_name.is_some_and(|p| p >= name) {
            return Err(format!(
                "{label}.counters[{index}]: names are not sorted-unique (`{name}`)"
            ));
        }
        previous_name = Some(name);
    }
    let Some(Value::Array(histograms)) = get(metrics, "histograms") else {
        return Err(format!("{label}: metrics missing `histograms` array"));
    };
    for (index, histogram) in histograms.iter().enumerate() {
        let Value::Object(histogram) = histogram else {
            return Err(format!("{label}.histograms[{index}]: not a JSON object"));
        };
        let name = get(histogram, "name").and_then(as_str).ok_or(format!(
            "{label}.histograms[{index}]: missing string `name`"
        ))?;
        check_histogram_body(name, histogram).map_err(|reason| format!("{label}: {reason}"))?;
    }
    Ok(())
}

/// Validates a `privacyscoped --stats-out` JSONL stream. Returns the
/// record count.
fn check_stats(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|error| format!("{path}: cannot read stats: {error}"))?;
    let mut records = 0usize;
    let mut previous_ts: Option<u64> = None;
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let label = format!("{path}:{}", index + 1);
        let value = serde_json::parse(line)
            .map_err(|error| format!("{label}: does not parse as JSON: {error}"))?;
        let Value::Object(record) = &value else {
            return Err(format!("{label}: record is not a JSON object"));
        };
        let ts_ms = get(record, "ts_ms")
            .and_then(as_u64)
            .ok_or(format!("{label}: missing u64 `ts_ms`"))?;
        if previous_ts.is_some_and(|p| p > ts_ms) {
            return Err(format!("{label}: `ts_ms` {ts_ms} went backwards"));
        }
        previous_ts = Some(ts_ms);
        let Some(Value::Object(service)) = get(record, "service") else {
            return Err(format!("{label}: missing `service` object"));
        };
        check_service_snapshot(&label, service)?;
        let Some(Value::Object(metrics)) = get(record, "metrics") else {
            return Err(format!("{label}: missing `metrics` object"));
        };
        check_metrics_snapshot(&label, metrics)?;
        records += 1;
    }
    if records == 0 {
        return Err(format!("{path}: no stats records (empty stream)"));
    }
    Ok(records)
}

const USAGE: &str =
    "usage: tracecheck [--profile <profile.json>] [--stats <stats.jsonl>] [<trace.jsonl> [metrics.json]]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile_path: Option<String> = None;
    let mut stats_path: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--profile" => match iter.next() {
                Some(value) => profile_path = Some(value),
                None => {
                    eprintln!("tracecheck: --profile needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--stats" => match iter.next() {
                Some(value) => stats_path = Some(value),
                None => {
                    eprintln!("tracecheck: --stats needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            _ => positional.push(arg),
        }
    }
    let (trace_path, metrics_path) = match positional.as_slice() {
        [] if profile_path.is_some() || stats_path.is_some() => (None, None),
        [trace] => (Some(trace.as_str()), None),
        [trace, metrics] => (Some(trace.as_str()), Some(metrics.as_str())),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut report = "tracecheck: ok".to_string();
    if let Some(trace_path) = trace_path {
        let summary = match check_trace(trace_path) {
            Ok(summary) => summary,
            Err(reason) => {
                eprintln!("tracecheck: {reason}");
                return ExitCode::FAILURE;
            }
        };
        report.push_str(&format!(
            ": {} spans, {} events, {} logs, {} parent links",
            summary.spans,
            summary.events,
            summary.logs,
            summary.parents.len()
        ));
    }
    if let Some(metrics_path) = metrics_path {
        match check_metrics(metrics_path) {
            Ok((counters, histograms)) => {
                report.push_str(&format!(
                    "; metrics: {counters} counters, {histograms} histograms"
                ));
            }
            Err(reason) => {
                eprintln!("tracecheck: {reason}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(profile_path) = &profile_path {
        match check_profile(profile_path) {
            Ok((profiles, rows)) => {
                report.push_str(&format!("; profile: {profiles} targets, {rows} rows"));
            }
            Err(reason) => {
                eprintln!("tracecheck: {reason}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(stats_path) = &stats_path {
        match check_stats(stats_path) {
            Ok(records) => {
                report.push_str(&format!("; stats: {records} records"));
            }
            Err(reason) => {
                eprintln!("tracecheck: {reason}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("{report}");
    ExitCode::SUCCESS
}
