//! Schema validator for telemetry output, used by the CI observability
//! smoke step (a small Rust binary so CI needs no `jq`).
//!
//! Usage: `tracecheck <trace.jsonl> [metrics.json]`
//!
//! Validates every JSONL line against the record schema documented in the
//! `telemetry` crate: `span` records carry `id`/`parent`/`name`/`t_us`/
//! `dur_us`, `event` records the same minus `dur_us`, `log` records carry
//! `level`/`message`. Because a parent span closes — and is therefore
//! written — *after* its children, parent links are resolved in a second
//! pass over the collected span ids. Exits 0 and prints a one-line summary
//! on success; prints the offending line number and reason and exits 1 on
//! the first violation.

use std::collections::BTreeSet;
use std::process::ExitCode;

use serde_json::Value;

fn get<'a>(object: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    object
        .iter()
        .find(|(name, _)| name == key)
        .map(|(_, value)| value)
}

fn as_u64(value: &Value) -> Option<u64> {
    match value {
        Value::Number(number) => number.as_u64(),
        _ => None,
    }
}

fn as_str(value: &Value) -> Option<&str> {
    match value {
        Value::String(text) => Some(text.as_str()),
        _ => None,
    }
}

fn check_fields(object: &[(String, Value)]) -> Result<(), String> {
    match get(object, "fields") {
        None => Ok(()),
        Some(Value::Object(fields)) => {
            for (key, value) in fields {
                match value {
                    Value::String(_) | Value::Number(_) | Value::Bool(_) => {}
                    other => {
                        return Err(format!(
                            "field `{key}` must be a string, number, or bool, got {other:?}"
                        ))
                    }
                }
            }
            Ok(())
        }
        Some(other) => Err(format!("`fields` must be an object, got {other:?}")),
    }
}

struct Summary {
    spans: usize,
    events: usize,
    logs: usize,
    span_ids: BTreeSet<u64>,
    /// (line number, parent id) pairs to resolve once all spans are known.
    parents: Vec<(usize, u64)>,
}

fn check_line(line: &str, lineno: usize, summary: &mut Summary) -> Result<(), String> {
    let value =
        serde_json::parse(line).map_err(|error| format!("does not parse as JSON: {error}"))?;
    let Value::Object(object) = &value else {
        return Err("record is not a JSON object".to_string());
    };
    let kind = get(object, "type")
        .and_then(as_str)
        .ok_or("missing string `type`")?;
    get(object, "t_us")
        .and_then(as_u64)
        .ok_or("missing u64 `t_us`")?;
    match kind {
        "span" | "event" => {
            let id = get(object, "id")
                .and_then(as_u64)
                .ok_or("missing u64 `id`")?;
            let name = get(object, "name")
                .and_then(as_str)
                .ok_or("missing string `name`")?;
            if name.is_empty() {
                return Err("empty `name`".to_string());
            }
            match get(object, "parent") {
                Some(Value::Null) | None => {}
                Some(parent) => {
                    let parent = as_u64(parent).ok_or("`parent` must be null or a u64")?;
                    summary.parents.push((lineno, parent));
                }
            }
            check_fields(object)?;
            if kind == "span" {
                get(object, "dur_us")
                    .and_then(as_u64)
                    .ok_or("span missing u64 `dur_us`")?;
                if !summary.span_ids.insert(id) {
                    return Err(format!("duplicate span id {id}"));
                }
                summary.spans += 1;
            } else {
                summary.events += 1;
            }
        }
        "log" => {
            let level = get(object, "level")
                .and_then(as_str)
                .ok_or("log missing string `level`")?;
            if !matches!(level, "warn" | "info" | "debug") {
                return Err(format!("unknown log level `{level}`"));
            }
            get(object, "message")
                .and_then(as_str)
                .ok_or("log missing string `message`")?;
            summary.logs += 1;
        }
        other => return Err(format!("unknown record type `{other}`")),
    }
    Ok(())
}

fn check_trace(path: &str) -> Result<Summary, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|error| format!("{path}: cannot read trace: {error}"))?;
    let mut summary = Summary {
        spans: 0,
        events: 0,
        logs: 0,
        span_ids: BTreeSet::new(),
        parents: Vec::new(),
    };
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        check_line(line, index + 1, &mut summary)
            .map_err(|reason| format!("{path}:{}: {reason}", index + 1))?;
    }
    // Second pass: every parent link must point at an emitted span. Parents
    // legitimately appear after their children in the file (a wave span
    // closes after its path-task spans), hence the deferred resolution.
    for (lineno, parent) in &summary.parents {
        if !summary.span_ids.contains(parent) {
            return Err(format!(
                "{path}:{lineno}: parent {parent} is not an emitted span id"
            ));
        }
    }
    Ok(summary)
}

fn check_metrics(path: &str) -> Result<(usize, usize), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|error| format!("{path}: cannot read metrics: {error}"))?;
    let value =
        serde_json::parse(&text).map_err(|error| format!("{path}: does not parse: {error}"))?;
    let Value::Object(object) = &value else {
        return Err(format!("{path}: summary is not a JSON object"));
    };
    let Some(Value::Object(counters)) = get(object, "counters") else {
        return Err(format!("{path}: missing `counters` object"));
    };
    for (name, value) in counters {
        as_u64(value).ok_or(format!("{path}: counter `{name}` is not a u64"))?;
    }
    let Some(Value::Object(histograms)) = get(object, "histograms") else {
        return Err(format!("{path}: missing `histograms` object"));
    };
    for (name, value) in histograms {
        let Value::Object(histogram) = value else {
            return Err(format!("{path}: histogram `{name}` is not an object"));
        };
        let Some(Value::Array(bounds)) = get(histogram, "bounds_us") else {
            return Err(format!("{path}: histogram `{name}` missing `bounds_us`"));
        };
        let Some(Value::Array(counts)) = get(histogram, "counts") else {
            return Err(format!("{path}: histogram `{name}` missing `counts`"));
        };
        if counts.len() != bounds.len() + 1 {
            return Err(format!(
                "{path}: histogram `{name}` needs {} counts (bounds + overflow), got {}",
                bounds.len() + 1,
                counts.len()
            ));
        }
        let mut tallied: u64 = 0;
        for count in counts {
            tallied += as_u64(count).ok_or(format!("{path}: histogram `{name}` non-u64 count"))?;
        }
        let declared = get(histogram, "count")
            .and_then(as_u64)
            .ok_or(format!("{path}: histogram `{name}` missing u64 `count`"))?;
        if tallied != declared {
            return Err(format!(
                "{path}: histogram `{name}` bucket counts sum to {tallied}, `count` says {declared}"
            ));
        }
        get(histogram, "sum_us")
            .and_then(as_u64)
            .ok_or(format!("{path}: histogram `{name}` missing u64 `sum_us`"))?;
    }
    Ok((counters.len(), histograms.len()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (trace_path, metrics_path) = match args.as_slice() {
        [trace] => (trace.as_str(), None),
        [trace, metrics] => (trace.as_str(), Some(metrics.as_str())),
        _ => {
            eprintln!("usage: tracecheck <trace.jsonl> [metrics.json]");
            return ExitCode::from(2);
        }
    };
    let summary = match check_trace(trace_path) {
        Ok(summary) => summary,
        Err(reason) => {
            eprintln!("tracecheck: {reason}");
            return ExitCode::FAILURE;
        }
    };
    let mut report = format!(
        "tracecheck: ok: {} spans, {} events, {} logs, {} parent links",
        summary.spans,
        summary.events,
        summary.logs,
        summary.parents.len()
    );
    if let Some(metrics_path) = metrics_path {
        match check_metrics(metrics_path) {
            Ok((counters, histograms)) => {
                report.push_str(&format!(
                    "; metrics: {counters} counters, {histograms} histograms"
                ));
            }
            Err(reason) => {
                eprintln!("tracecheck: {reason}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("{report}");
    ExitCode::SUCCESS
}
