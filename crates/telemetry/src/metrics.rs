//! Counters and fixed-bucket histograms.
//!
//! The registry is deliberately simple: named monotonic counters and
//! histograms with one fixed, power-of-four bucket layout (microsecond
//! scale, ~1 µs to ~4 s). Fixed buckets keep `observe` allocation-free and
//! make summaries from different runs directly comparable.

use std::collections::BTreeMap;

use serde::{Deserialize, Number, Serialize, Value};

/// Upper bounds (inclusive, microseconds) of the histogram buckets; one
/// overflow bucket follows the last bound.
pub const BUCKET_BOUNDS_US: [u64; 12] = [
    1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304,
];

/// A fixed-bucket histogram of microsecond observations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKET_BOUNDS_US.len() + 1],
    total: u64,
    sum_us: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value_us: u64) {
        let bucket = BUCKET_BOUNDS_US
            .iter()
            .position(|bound| value_us <= *bound)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum_us = self.sum_us.saturating_add(value_us);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all observations in microseconds (saturating).
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Per-bucket counts; the final slot is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "bounds_us".to_string(),
                Value::Array(
                    BUCKET_BOUNDS_US
                        .iter()
                        .map(|bound| Value::Number(Number::U64(*bound)))
                        .collect(),
                ),
            ),
            (
                "counts".to_string(),
                Value::Array(
                    self.counts
                        .iter()
                        .map(|count| Value::Number(Number::U64(*count)))
                        .collect(),
                ),
            ),
            ("count".to_string(), Value::Number(Number::U64(self.total))),
            (
                "sum_us".to_string(),
                Value::Number(Number::U64(self.sum_us)),
            ),
        ])
    }
}

/// Named counters and histograms. Names are static so hot paths never
/// allocate; storage is ordered so the JSON summary is deterministic.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter, creating it at zero.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        let slot = self.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Records one observation into the named histogram.
    pub fn observe(&mut self, name: &'static str, value_us: u64) {
        self.histograms.entry(name).or_default().record(value_us);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A point-in-time, serializable copy of the registry. Counters and
    /// histograms come out in sorted-name order (the `BTreeMap` order), so
    /// two snapshots of equal registries serialize byte-identically.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(name, value)| (name.to_string(), *value))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, histogram)| HistogramSnapshot {
                    name: name.to_string(),
                    bounds_us: BUCKET_BOUNDS_US.to_vec(),
                    counts: histogram.counts.to_vec(),
                    count: histogram.total,
                    sum_us: histogram.sum_us,
                })
                .collect(),
        }
    }

    /// The end-of-run JSON summary written to `--metrics-out`.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "counters".to_string(),
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(name, value)| (name.to_string(), Value::Number(Number::U64(*value))))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Value::Object(
                    self.histograms
                        .iter()
                        .map(|(name, histogram)| (name.to_string(), histogram.to_value()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// One histogram, frozen for the wire: bucket bounds travel with the
/// counts so a consumer never needs this build's `BUCKET_BOUNDS_US`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Histogram name (e.g. `engine.wave_us`).
    pub name: String,
    /// Inclusive upper bounds in microseconds; one overflow bucket follows.
    pub bounds_us: Vec<u64>,
    /// Per-bucket counts (`bounds_us.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total observations (must equal the sum of `counts`).
    pub count: u64,
    /// Saturating sum of observations, microseconds.
    pub sum_us: u64,
}

/// A point-in-time copy of a [`Registry`], in deterministic (sorted-name)
/// order. This is what `ServerFrame::Stats` and `--stats-out` carry.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// `(name, value)` counter pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram snapshots, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a named counter in this snapshot (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bound() {
        let mut histogram = Histogram::new();
        histogram.record(0); // bucket 0 (<= 1)
        histogram.record(1); // bucket 0
        histogram.record(2); // bucket 1 (<= 4)
        histogram.record(1_000); // bucket 5 (<= 1024)
        histogram.record(u64::MAX); // overflow bucket
        assert_eq!(histogram.count(), 5);
        assert_eq!(histogram.counts()[0], 2);
        assert_eq!(histogram.counts()[1], 1);
        assert_eq!(histogram.counts()[5], 1);
        assert_eq!(histogram.counts()[BUCKET_BOUNDS_US.len()], 1);
        assert_eq!(histogram.sum_us(), u64::MAX); // saturates
    }

    #[test]
    fn registry_summary_is_deterministic() {
        let mut registry = Registry::new();
        registry.add("z.second", 1);
        registry.add("a.first", 2);
        registry.observe("lat", 10);
        let first = serde_json::to_string(&registry.to_value()).expect("serializes");
        let second = serde_json::to_string(&registry.to_value()).expect("serializes");
        assert_eq!(first, second);
        // BTreeMap ordering: "a.first" precedes "z.second" in the dump.
        let a = first.find("a.first").expect("present");
        let z = first.find("z.second").expect("present");
        assert!(a < z);
        assert_eq!(registry.counter_value("a.first"), 2);
        assert_eq!(registry.counter_value("missing"), 0);
    }
}
