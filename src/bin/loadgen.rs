//! `loadgen` — seeded, reproducible load generation for the analysis
//! service, plus the PR 6 throughput/latency bench.
//!
//! ```text
//! loadgen [--jobs <n>] [--seed <s>] [--pool <n>] [--slice-ms <n>]
//!         [--addr <host:port | unix:/path>]
//!     smoke mode: submit the whole job mix at once (saturating the queue)
//!     and wait for every job; exits 1 if any job fails or never finishes.
//!     With --addr the jobs go to a running `privacyscoped` over the wire;
//!     otherwise an in-process pool of `--pool` workers runs them.
//!
//! loadgen --bench [--out <file>] [--jobs <n>] [--seed <s>]
//!     bench mode: run the same seeded mix on in-process pools of 1, 4 and
//!     8 workers; write jobs/sec and p50/p99 latency as JSON (BENCH_6).
//! ```
//!
//! The job mix is a deterministic function of `--seed`: an LCG draws from
//! the mlcorpus modules (the three clean Table V modules plus the
//! vulnerable Recommender), so two runs with the same seed submit
//! byte-identical job streams — the foundation of the no-starvation smoke
//! test and of comparable bench numbers.

use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use privacyscope::protocol::{self, ClientFrame, ServerFrame};
use privacyscope::service::{AnalysisService, JobSpec, ServiceConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("loadgen: {message}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage:
  loadgen [--jobs <n>] [--seed <s>] [--pool <n>] [--slice-ms <n>] [--addr <addr>]
  loadgen --bench [--out <file>] [--jobs <n>] [--seed <s>]
";

struct Options {
    jobs: usize,
    seed: u64,
    pool: usize,
    slice_ms: u64,
    addr: Option<String>,
    bench: bool,
    out: Option<String>,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        jobs: 16,
        seed: 42,
        pool: 2,
        slice_ms: 0,
        addr: None,
        bench: false,
        out: None,
    };
    let mut seen: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let name = match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return Err("".into());
            }
            other => other
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected argument `{other}`\n{USAGE}"))?,
        };
        if seen.iter().any(|s| s == name) {
            return Err(format!("duplicate `--{name}`: pass each option once"));
        }
        seen.push(name.to_string());
        if name == "bench" {
            options.bench = true;
            continue;
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("--{name} needs a value"))?;
        let number = || {
            value
                .parse::<u64>()
                .map_err(|_| format!("--{name} expects a number, got `{value}`"))
        };
        match name {
            "jobs" => options.jobs = usize::try_from(number()?).unwrap_or(usize::MAX),
            "seed" => options.seed = number()?,
            "pool" => {
                options.pool = usize::try_from(number()?).unwrap_or(usize::MAX);
                if options.pool == 0 {
                    return Err("--pool 0 would run no workers; use 1 or more".into());
                }
            }
            "slice-ms" => options.slice_ms = number()?,
            "addr" => options.addr = Some(value.clone()),
            "out" => options.out = Some(value.clone()),
            other => return Err(format!("unknown option `--{other}`\n{USAGE}")),
        }
    }
    Ok(options)
}

/// Deterministic linear congruential generator (Knuth MMIX constants).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// The seeded job mix: a reproducible stream of corpus-module analyses.
fn job_mix(jobs: usize, seed: u64) -> Vec<JobSpec> {
    let mut corpus = mlcorpus::modules();
    corpus.push(mlcorpus::recommender_vulnerable());
    let mut lcg = Lcg(seed);
    (0..jobs)
        .map(|_| {
            let module = &corpus[usize::try_from(lcg.next()).unwrap_or(0) % corpus.len()];
            // Budgets follow the repo's corpus tests (max_paths 16–40,
            // loop bound 2): the ML modules' nested loops make larger
            // bounds explode combinatorially, which would bench the
            // engine, not the service.
            JobSpec {
                source: module.source.to_string(),
                edl: module.edl.to_string(),
                function: Some(module.entry.to_string()),
                max_paths: 12 + usize::try_from(lcg.next() % 4).unwrap_or(0) * 4,
                loop_bound: 2,
                workers: 1,
                ..JobSpec::default()
            }
        })
        .collect()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted_ms.len() as f64 - 1.0)).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

fn run(args: &[String]) -> Result<bool, String> {
    let options = parse(args)?;
    if options.bench {
        return bench(&options);
    }
    match &options.addr {
        Some(addr) => smoke_remote(&options, addr),
        None => smoke_local(&options),
    }
}

/// One measured run against a fresh in-process pool: returns per-job
/// latencies (ms, submission → terminal) and the wall-clock seconds.
fn drive_local(
    specs: &[JobSpec],
    pool: usize,
    slice_ms: u64,
) -> Result<(Vec<f64>, f64, u32, usize), String> {
    let spool = std::env::temp_dir().join(format!("loadgen-spool-{}-{pool}", std::process::id()));
    let service = AnalysisService::start(ServiceConfig {
        pool,
        slice: (slice_ms > 0).then(|| Duration::from_millis(slice_ms)),
        spool,
    })
    .map_err(|e| format!("cannot start service: {e}"))?;
    let service = Arc::new(service);

    let started = Instant::now();
    let ids: Vec<u64> = specs.iter().map(|s| service.submit(s.clone())).collect();
    let mut latencies = Vec::with_capacity(ids.len());
    let mut suspensions = 0u32;
    let mut failures = 0usize;
    for id in ids {
        let Some(outcome) = service.wait(id) else {
            failures += 1;
            continue;
        };
        if outcome.error.is_some() {
            failures += 1;
        }
        suspensions += outcome.suspensions;
        latencies.push(outcome.total.as_secs_f64() * 1000.0);
    }
    let wall = started.elapsed().as_secs_f64();
    Ok((latencies, wall, suspensions, failures))
}

fn smoke_local(options: &Options) -> Result<bool, String> {
    let specs = job_mix(options.jobs, options.seed);
    let (mut latencies, wall, suspensions, failures) =
        drive_local(&specs, options.pool, options.slice_ms)?;
    latencies.sort_by(|a, b| a.total_cmp(b));
    println!(
        "loadgen: {} jobs on a {}-worker pool in {:.2}s ({:.1} jobs/s), \
         p50 {:.1} ms, p99 {:.1} ms, {} suspension(s), {} failure(s)",
        specs.len(),
        options.pool,
        wall,
        specs.len() as f64 / wall.max(1e-9),
        percentile(&latencies, 50.0),
        percentile(&latencies, 99.0),
        suspensions,
        failures,
    );
    if latencies.len() != specs.len() {
        eprintln!(
            "loadgen: starvation: only {}/{} jobs reached a terminal state",
            latencies.len(),
            specs.len()
        );
        return Ok(false);
    }
    Ok(failures == 0)
}

/// Smoke over the wire: one connection, all submissions up front, then
/// count terminal frames — any missing completion is starvation.
fn smoke_remote(options: &Options, addr: &str) -> Result<bool, String> {
    let mut stream: Box<dyn ReadWriteStream> = if let Some(path) = addr.strip_prefix("unix:") {
        Box::new(
            std::os::unix::net::UnixStream::connect(path)
                .map_err(|e| format!("cannot connect to `unix:{path}`: {e}"))?,
        )
    } else {
        Box::new(
            std::net::TcpStream::connect(addr)
                .map_err(|e| format!("cannot connect to `{addr}`: {e}"))?,
        )
    };

    let specs = job_mix(options.jobs, options.seed);
    let started = Instant::now();
    for spec in &specs {
        let frame = ClientFrame::Submit {
            source: spec.source.clone(),
            edl: spec.edl.clone(),
            config: spec.config_xml.clone().unwrap_or_default(),
            function: spec.function.clone().unwrap_or_default(),
            max_paths: spec.max_paths as u64,
            loop_bound: spec.loop_bound as u64,
            workers: spec.workers as u64,
            deadline_ms: spec.deadline_ms.unwrap_or(0),
            progress: false,
        };
        let line = protocol::encode(&frame)?;
        stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .map_err(|e| format!("submit failed: {e}"))?;
    }
    stream.flush().map_err(|e| format!("submit failed: {e}"))?;

    let mut accepted = 0usize;
    let mut done = 0usize;
    let mut failed = 0usize;
    let mut latencies = Vec::with_capacity(specs.len());
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line.map_err(|e| format!("lost the daemon connection: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        match protocol::decode::<ServerFrame>(&line)? {
            ServerFrame::Accepted { .. } => accepted += 1,
            ServerFrame::Done { .. } => {
                done += 1;
                latencies.push(started.elapsed().as_secs_f64() * 1000.0);
            }
            ServerFrame::Error { message, .. } => {
                eprintln!("loadgen: job failed: {message}");
                failed += 1;
            }
            _ => {}
        }
        if done + failed == specs.len() {
            break;
        }
    }
    let wall = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.total_cmp(b));
    println!(
        "loadgen: {} accepted, {done} done, {failed} failed over `{addr}` \
         in {wall:.2}s ({:.1} jobs/s), p50 {:.1} ms, p99 {:.1} ms",
        accepted,
        specs.len() as f64 / wall.max(1e-9),
        percentile(&latencies, 50.0),
        percentile(&latencies, 99.0),
    );
    Ok(done == specs.len() && failed == 0)
}

/// The PR 6 bench: the same seeded mix on pools of 1, 4 and 8 workers.
fn bench(options: &Options) -> Result<bool, String> {
    let specs = job_mix(options.jobs, options.seed);
    let mut rows = Vec::new();
    for pool in [1usize, 4, 8] {
        let (mut latencies, wall, suspensions, failures) = drive_local(&specs, pool, 0)?;
        if failures > 0 || latencies.len() != specs.len() {
            return Err(format!("bench run on pool {pool} lost {failures} job(s)"));
        }
        latencies.sort_by(|a, b| a.total_cmp(b));
        let row = format!(
            "    {{\n      \"pool\": {pool},\n      \"jobs_per_sec\": {:.2},\n      \
             \"p50_ms\": {:.2},\n      \"p99_ms\": {:.2},\n      \"suspensions\": {suspensions}\n    }}",
            specs.len() as f64 / wall.max(1e-9),
            percentile(&latencies, 50.0),
            percentile(&latencies, 99.0),
        );
        eprintln!(
            "bench: pool {pool}: {:.1} jobs/s, p50 {:.1} ms, p99 {:.1} ms",
            specs.len() as f64 / wall.max(1e-9),
            percentile(&latencies, 50.0),
            percentile(&latencies, 99.0),
        );
        rows.push(row);
    }
    let json = format!(
        "{{\n  \"bench\": \"analysis_service_throughput\",\n  \"jobs\": {},\n  \
         \"seed\": {},\n  \"job_mix\": \"mlcorpus modules + vulnerable recommender\",\n  \
         \"concurrency\": [\n{}\n  ]\n}}\n",
        specs.len(),
        options.seed,
        rows.join(",\n"),
    );
    match &options.out {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("cannot write `{path}`: {e}"))?
        }
        None => print!("{json}"),
    }
    Ok(true)
}

/// The two local stream flavours an `--addr` can name.
trait ReadWriteStream: std::io::Read + std::io::Write {}
impl ReadWriteStream for std::net::TcpStream {}
impl ReadWriteStream for std::os::unix::net::UnixStream {}
