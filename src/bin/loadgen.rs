//! `loadgen` — seeded, reproducible load generation for the analysis
//! service, plus the PR 6 throughput bench and the PR 7 overload bench.
//!
//! ```text
//! loadgen [--jobs <n>] [--seed <s>] [--pool <n>] [--slice-ms <n>]
//!         [--addr <host:port | unix:/path>]
//!     smoke mode: submit the whole job mix at once (saturating the queue)
//!     and wait for every job; exits 1 if any job fails or never finishes.
//!     With --addr the jobs go to a running `privacyscoped` over the wire;
//!     otherwise an in-process pool of `--pool` workers runs them.
//!     Connection-refused/reset errors are retried with bounded backoff so
//!     a daemon that is still booting (or just restarted after a crash)
//!     does not abort the run.
//!
//! loadgen --bench [--out <file>] [--jobs <n>] [--seed <s>]
//!     bench mode: run the same seeded mix on in-process pools of 1, 4 and
//!     8 workers (throughput), then re-run it against admission-bounded
//!     pools (overload) and record per-class error counts — shed
//!     (queue_full), rejected (path_budget/draining), disconnected — plus
//!     the worst-case rejection latency. Each round also captures a fleet
//!     `Stats` snapshot (service state + telemetry counters/histograms)
//!     before and after the run and embeds both in the output, so the
//!     numbers carry their own provenance. Written as JSON (BENCH_8).
//! ```
//!
//! The job mix is a deterministic function of `--seed`: an LCG draws from
//! the mlcorpus modules (the three clean Table V modules plus the
//! vulnerable Recommender), so two runs with the same seed submit
//! byte-identical job streams — the foundation of the no-starvation smoke
//! test and of comparable bench numbers.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use privacyscope::protocol::{self, ClientFrame, ServerFrame};
use privacyscope::service::{AnalysisService, JobSpec, ServiceConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("loadgen: {message}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage:
  loadgen [--jobs <n>] [--seed <s>] [--pool <n>] [--slice-ms <n>] [--addr <addr>]
  loadgen --bench [--out <file>] [--jobs <n>] [--seed <s>]
";

struct Options {
    jobs: usize,
    seed: u64,
    pool: usize,
    slice_ms: u64,
    addr: Option<String>,
    bench: bool,
    out: Option<String>,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        jobs: 16,
        seed: 42,
        pool: 2,
        slice_ms: 0,
        addr: None,
        bench: false,
        out: None,
    };
    let mut seen: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let name = match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return Err("".into());
            }
            other => other
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected argument `{other}`\n{USAGE}"))?,
        };
        if seen.iter().any(|s| s == name) {
            return Err(format!("duplicate `--{name}`: pass each option once"));
        }
        seen.push(name.to_string());
        if name == "bench" {
            options.bench = true;
            continue;
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("--{name} needs a value"))?;
        let number = || {
            value
                .parse::<u64>()
                .map_err(|_| format!("--{name} expects a number, got `{value}`"))
        };
        match name {
            "jobs" => options.jobs = usize::try_from(number()?).unwrap_or(usize::MAX),
            "seed" => options.seed = number()?,
            "pool" => {
                options.pool = usize::try_from(number()?).unwrap_or(usize::MAX);
                if options.pool == 0 {
                    return Err("--pool 0 would run no workers; use 1 or more".into());
                }
            }
            "slice-ms" => options.slice_ms = number()?,
            "addr" => options.addr = Some(value.clone()),
            "out" => options.out = Some(value.clone()),
            other => return Err(format!("unknown option `--{other}`\n{USAGE}")),
        }
    }
    Ok(options)
}

/// Deterministic linear congruential generator (Knuth MMIX constants).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// The seeded job mix: a reproducible stream of corpus-module analyses.
fn job_mix(jobs: usize, seed: u64) -> Vec<JobSpec> {
    let mut corpus = mlcorpus::modules();
    corpus.push(mlcorpus::recommender_vulnerable());
    let mut lcg = Lcg(seed);
    (0..jobs)
        .map(|_| {
            let module = &corpus[usize::try_from(lcg.next()).unwrap_or(0) % corpus.len()];
            // Budgets follow the repo's corpus tests (max_paths 16–40,
            // loop bound 2): the ML modules' nested loops make larger
            // bounds explode combinatorially, which would bench the
            // engine, not the service.
            JobSpec {
                source: module.source.to_string(),
                edl: module.edl.to_string(),
                function: Some(module.entry.to_string()),
                max_paths: 12 + usize::try_from(lcg.next() % 4).unwrap_or(0) * 4,
                loop_bound: 2,
                workers: 1,
                ..JobSpec::default()
            }
        })
        .collect()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted_ms.len() as f64 - 1.0)).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

fn run(args: &[String]) -> Result<bool, String> {
    let options = parse(args)?;
    if options.bench {
        return bench(&options);
    }
    match &options.addr {
        Some(addr) => smoke_remote(&options, addr),
        None => smoke_local(&options),
    }
}

/// One fleet snapshot: the same `{service, metrics}` pair a
/// `privacyscoped` answers a `Stats` frame with, captured in-process.
#[derive(serde::Serialize)]
struct FleetSnapshot {
    service: privacyscope::ServiceStats,
    metrics: telemetry::MetricsSnapshot,
}

/// One measured in-process run.
struct LocalRun {
    /// Per accepted job: submission → terminal, milliseconds, sorted.
    latencies: Vec<f64>,
    /// Per rejected submission: how long the admission decision took,
    /// milliseconds, sorted. Bounded rejection latency means overload
    /// answers fast instead of queueing the client behind the backlog.
    reject_latencies: Vec<f64>,
    wall: f64,
    suspensions: u32,
    failures: usize,
    shed: usize,
    rejected: usize,
    accepted: usize,
    /// Fleet state before the first submission and after the last wait —
    /// queue empty both times, counters monotone between them.
    stats_before: FleetSnapshot,
    stats_after: FleetSnapshot,
}

/// One measured run against a fresh in-process pool. `max_queue` 0 keeps
/// admission unbounded (the PR 6 throughput shape); a small bound turns
/// the same mix into the overload shape where the tail is shed.
fn drive_local(
    specs: &[JobSpec],
    pool: usize,
    slice_ms: u64,
    max_queue: usize,
) -> Result<LocalRun, String> {
    let spool = std::env::temp_dir().join(format!(
        "loadgen-spool-{}-{pool}-{max_queue}",
        std::process::id()
    ));
    // A live metrics registry without any file sink: `Stats`-style
    // snapshots work exactly as they do against a daemon.
    let telemetry = telemetry::TelemetryConfig {
        collect_metrics: true,
        ..telemetry::TelemetryConfig::default()
    }
    .build()
    .map_err(|e| format!("cannot build telemetry: {e}"))?;
    let service = AnalysisService::start(ServiceConfig {
        pool,
        slice: (slice_ms > 0).then(|| Duration::from_millis(slice_ms)),
        spool,
        max_queue,
        telemetry: telemetry.clone(),
        ..ServiceConfig::default()
    })
    .map_err(|e| format!("cannot start service: {e}"))?;
    let service = Arc::new(service);
    let stats_before = FleetSnapshot {
        service: service.stats(),
        metrics: telemetry.metrics_snapshot(),
    };

    let started = Instant::now();
    let mut ids = Vec::with_capacity(specs.len());
    let mut shed = 0usize;
    let mut rejected = 0usize;
    let mut reject_latencies = Vec::new();
    for spec in specs {
        let before = Instant::now();
        match service.submit(spec.clone()) {
            Ok(id) => ids.push(id),
            Err(reason) => {
                reject_latencies.push(before.elapsed().as_secs_f64() * 1000.0);
                if reason.code() == "queue_full" {
                    shed += 1;
                } else {
                    rejected += 1;
                }
            }
        }
    }
    let accepted = ids.len();
    let mut latencies = Vec::with_capacity(accepted);
    let mut suspensions = 0u32;
    let mut failures = 0usize;
    for id in ids {
        let Some(outcome) = service.wait(id) else {
            failures += 1;
            continue;
        };
        if outcome.error.is_some() {
            failures += 1;
        }
        suspensions += outcome.suspensions;
        latencies.push(outcome.total.as_secs_f64() * 1000.0);
    }
    let wall = started.elapsed().as_secs_f64();
    let stats_after = FleetSnapshot {
        service: service.stats(),
        metrics: telemetry.metrics_snapshot(),
    };
    latencies.sort_by(|a, b| a.total_cmp(b));
    reject_latencies.sort_by(|a, b| a.total_cmp(b));
    Ok(LocalRun {
        latencies,
        reject_latencies,
        wall,
        suspensions,
        failures,
        shed,
        rejected,
        accepted,
        stats_before,
        stats_after,
    })
}

fn smoke_local(options: &Options) -> Result<bool, String> {
    let specs = job_mix(options.jobs, options.seed);
    let run = drive_local(&specs, options.pool, options.slice_ms, 0)?;
    println!(
        "loadgen: {} jobs on a {}-worker pool in {:.2}s ({:.1} jobs/s), \
         p50 {:.1} ms, p99 {:.1} ms, {} suspension(s), {} failure(s)",
        specs.len(),
        options.pool,
        run.wall,
        specs.len() as f64 / run.wall.max(1e-9),
        percentile(&run.latencies, 50.0),
        percentile(&run.latencies, 99.0),
        run.suspensions,
        run.failures,
    );
    if run.latencies.len() != specs.len() {
        eprintln!(
            "loadgen: starvation: only {}/{} jobs reached a terminal state",
            run.latencies.len(),
            specs.len()
        );
        return Ok(false);
    }
    Ok(run.failures == 0)
}

/// Connects to the daemon, retrying connection-refused/reset with bounded
/// exponential backoff (a daemon mid-boot or mid-restart is a transient,
/// not a run-aborting failure). Gives up after ~3 s of cumulative waiting.
fn connect_with_retry(addr: &str) -> Result<Box<dyn ReadWriteStream>, String> {
    let connect = || -> std::io::Result<Box<dyn ReadWriteStream>> {
        if let Some(path) = addr.strip_prefix("unix:") {
            Ok(Box::new(std::os::unix::net::UnixStream::connect(path)?))
        } else {
            Ok(Box::new(std::net::TcpStream::connect(addr)?))
        }
    };
    let mut delay = Duration::from_millis(50);
    let mut attempts_left = 6u32;
    loop {
        match connect() {
            Ok(stream) => return Ok(stream),
            Err(error)
                if attempts_left > 0
                    && matches!(
                        error.kind(),
                        ErrorKind::ConnectionRefused
                            | ErrorKind::ConnectionReset
                            | ErrorKind::ConnectionAborted
                            | ErrorKind::NotFound
                    ) =>
            {
                eprintln!(
                    "loadgen: connect to `{addr}` failed ({error}); retrying in {}ms",
                    delay.as_millis()
                );
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(800));
                attempts_left -= 1;
            }
            Err(error) => return Err(format!("cannot connect to `{addr}`: {error}")),
        }
    }
}

/// Smoke over the wire: one connection, all submissions up front, then
/// count terminal frames — any missing completion is starvation. Overload
/// answers (`Rejected`) and lost connections are counted per class rather
/// than silently conflated with failures.
fn smoke_remote(options: &Options, addr: &str) -> Result<bool, String> {
    let mut stream = connect_with_retry(addr)?;

    let specs = job_mix(options.jobs, options.seed);
    let started = Instant::now();
    for spec in &specs {
        let frame = ClientFrame::Submit {
            source: spec.source.clone(),
            edl: spec.edl.clone(),
            config: spec.config_xml.clone().unwrap_or_default(),
            function: spec.function.clone().unwrap_or_default(),
            max_paths: spec.max_paths as u64,
            loop_bound: spec.loop_bound as u64,
            workers: spec.workers as u64,
            deadline_ms: spec.deadline_ms.unwrap_or(0),
            progress: false,
        };
        let line = protocol::encode(&frame)?;
        stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .map_err(|e| format!("submit failed: {e}"))?;
    }
    stream.flush().map_err(|e| format!("submit failed: {e}"))?;

    let mut accepted = 0usize;
    let mut done = 0usize;
    let mut failed = 0usize;
    let mut rejected = 0usize;
    let mut disconnected = false;
    let mut latencies = Vec::with_capacity(specs.len());
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(error) => {
                eprintln!("loadgen: lost the daemon connection: {error}");
                disconnected = true;
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        match protocol::decode::<ServerFrame>(&line)? {
            ServerFrame::Accepted { .. } => accepted += 1,
            ServerFrame::Rejected { code, reason, .. } => {
                eprintln!("loadgen: submission rejected ({code}): {reason}");
                rejected += 1;
            }
            ServerFrame::Done { .. } => {
                done += 1;
                latencies.push(started.elapsed().as_secs_f64() * 1000.0);
            }
            ServerFrame::Error { message, .. } => {
                eprintln!("loadgen: job failed: {message}");
                failed += 1;
            }
            _ => {}
        }
        if done + failed + rejected == specs.len() {
            break;
        }
    }
    let wall = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.total_cmp(b));
    println!(
        "loadgen: {} accepted, {done} done, {failed} failed, {rejected} rejected, \
         {} disconnected over `{addr}` in {wall:.2}s ({:.1} jobs/s), \
         p50 {:.1} ms, p99 {:.1} ms",
        accepted,
        usize::from(disconnected),
        specs.len() as f64 / wall.max(1e-9),
        percentile(&latencies, 50.0),
        percentile(&latencies, 99.0),
    );
    Ok(done == specs.len() && failed == 0 && !disconnected)
}

/// The PR 6/7 bench: the seeded mix on unbounded pools of 1, 4 and 8
/// workers (throughput), then on admission-bounded pools of 1 and 4
/// (overload) where the tail of the burst must be shed with a typed
/// rejection — fast — while every accepted job still completes.
fn snapshot_json(snapshot: &FleetSnapshot) -> Result<String, String> {
    serde_json::to_string(snapshot).map_err(|e| format!("cannot serialize stats snapshot: {e}"))
}

fn bench(options: &Options) -> Result<bool, String> {
    let specs = job_mix(options.jobs, options.seed);
    let mut rows = Vec::new();
    for pool in [1usize, 4, 8] {
        let run = drive_local(&specs, pool, 0, 0)?;
        if run.failures > 0 || run.latencies.len() != specs.len() {
            return Err(format!(
                "bench run on pool {pool} lost {} job(s)",
                run.failures
            ));
        }
        let row = format!(
            "    {{\n      \"pool\": {pool},\n      \"jobs_per_sec\": {:.2},\n      \
             \"p50_ms\": {:.2},\n      \"p99_ms\": {:.2},\n      \"suspensions\": {},\n      \
             \"stats_before\": {},\n      \"stats_after\": {}\n    }}",
            specs.len() as f64 / run.wall.max(1e-9),
            percentile(&run.latencies, 50.0),
            percentile(&run.latencies, 99.0),
            run.suspensions,
            snapshot_json(&run.stats_before)?,
            snapshot_json(&run.stats_after)?,
        );
        eprintln!(
            "bench: pool {pool}: {:.1} jobs/s, p50 {:.1} ms, p99 {:.1} ms",
            specs.len() as f64 / run.wall.max(1e-9),
            percentile(&run.latencies, 50.0),
            percentile(&run.latencies, 99.0),
        );
        rows.push(row);
    }

    // Overload: the whole mix lands on a queue bounded at 2 × pool. The
    // excess must be shed (queue_full) with bounded rejection latency,
    // and no *accepted* job may starve or fail.
    let mut overload_rows = Vec::new();
    for pool in [1usize, 4] {
        let max_queue = pool * 2;
        let run = drive_local(&specs, pool, 0, max_queue)?;
        if run.failures > 0 || run.latencies.len() != run.accepted {
            return Err(format!(
                "overload run on pool {pool} starved or failed {} accepted job(s)",
                run.accepted - run.latencies.len() + run.failures
            ));
        }
        let reject_p99 = percentile(&run.reject_latencies, 99.0);
        let row = format!(
            "    {{\n      \"pool\": {pool},\n      \"max_queue\": {max_queue},\n      \
             \"accepted\": {},\n      \"shed\": {},\n      \"rejected\": {},\n      \
             \"disconnected\": 0,\n      \"jobs_per_sec\": {:.2},\n      \
             \"p50_ms\": {:.2},\n      \"p99_ms\": {:.2},\n      \
             \"reject_p99_ms\": {:.3},\n      \
             \"stats_before\": {},\n      \"stats_after\": {}\n    }}",
            run.accepted,
            run.shed,
            run.rejected,
            run.accepted as f64 / run.wall.max(1e-9),
            percentile(&run.latencies, 50.0),
            percentile(&run.latencies, 99.0),
            reject_p99,
            snapshot_json(&run.stats_before)?,
            snapshot_json(&run.stats_after)?,
        );
        eprintln!(
            "bench: overload pool {pool} (queue {max_queue}): {} accepted, {} shed, \
             {:.1} jobs/s, p99 {:.1} ms, reject p99 {:.3} ms",
            run.accepted,
            run.shed,
            run.accepted as f64 / run.wall.max(1e-9),
            percentile(&run.latencies, 99.0),
            reject_p99,
        );
        overload_rows.push(row);
    }

    let json = format!(
        "{{\n  \"bench\": \"analysis_service_observability\",\n  \"jobs\": {},\n  \
         \"seed\": {},\n  \"job_mix\": \"mlcorpus modules + vulnerable recommender\",\n  \
         \"concurrency\": [\n{}\n  ],\n  \"overload\": [\n{}\n  ]\n}}\n",
        specs.len(),
        options.seed,
        rows.join(",\n"),
        overload_rows.join(",\n"),
    );
    match &options.out {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("cannot write `{path}`: {e}"))?
        }
        None => print!("{json}"),
    }
    Ok(true)
}

/// The two local stream flavours an `--addr` can name.
trait ReadWriteStream: std::io::Read + std::io::Write {}
impl ReadWriteStream for std::net::TcpStream {}
impl ReadWriteStream for std::os::unix::net::UnixStream {}
