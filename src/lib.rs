//! Shared helpers for the workspace-level examples and integration tests.
