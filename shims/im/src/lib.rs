//! Persistent (immutable, structurally shared) collections.
//!
//! Offline stand-in for the `im` crate, written for the symbolic-execution
//! engine's copy-on-write path states. Two containers:
//!
//! * [`OrdMap`]: an ordered map backed by a path-copying weight-balanced
//!   binary search tree whose nodes are shared through [`Arc`]. `clone` is
//!   O(1); `insert`/`remove` are O(log n) and allocate only the spine from
//!   the root to the touched node, sharing everything else with the
//!   original map.
//! * [`Vector`]: an append-friendly sequence stored as frozen `Arc`-shared
//!   chunks plus a small mutable tail. `clone` copies only the chunk table
//!   and the tail (≤ one chunk of elements), not the history.
//!
//! Both containers serialize **byte-identically** to their `std`
//! counterparts (`BTreeMap` / `Vec`) through the vendored `serde` shim, and
//! hash with the same stream as `std` (length prefix via `write_usize`,
//! then elements in order) so persisted digests do not change when a
//! `BTreeMap` is swapped for an [`OrdMap`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use serde::{Deserialize, DeserializeOwned, Deserializer, Serialize, Serializer};

// ---------------------------------------------------------------------------
// OrdMap
// ---------------------------------------------------------------------------

/// Rebalance threshold of the weight-balanced tree (Adams' `delta`): a
/// sibling may be at most `DELTA` times heavier before a rotation.
const DELTA: usize = 3;
/// Single-vs-double rotation threshold (Adams' `ratio`).
const RATIO: usize = 2;

#[derive(Debug)]
struct Node<K, V> {
    size: usize,
    key: K,
    value: V,
    left: Link<K, V>,
    right: Link<K, V>,
}

type Link<K, V> = Option<Arc<Node<K, V>>>;

fn size<K, V>(link: &Link<K, V>) -> usize {
    link.as_ref().map_or(0, |n| n.size)
}

fn mk<K, V>(key: K, value: V, left: Link<K, V>, right: Link<K, V>) -> Link<K, V> {
    Some(Arc::new(Node {
        size: size(&left) + size(&right) + 1,
        key,
        value,
        left,
        right,
    }))
}

/// A persistent ordered map with `Arc`-shared tree nodes.
///
/// Cloning is O(1) (a single reference-count bump); updates copy only the
/// O(log n) path from the root to the changed node. Iteration yields
/// entries in ascending key order, exactly like `BTreeMap`.
pub struct OrdMap<K, V> {
    root: Link<K, V>,
}

impl<K, V> Clone for OrdMap<K, V> {
    fn clone(&self) -> Self {
        OrdMap {
            root: self.root.clone(),
        }
    }
}

impl<K, V> Default for OrdMap<K, V> {
    fn default() -> Self {
        OrdMap { root: None }
    }
}

impl<K, V> OrdMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        OrdMap::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        size(&self.root)
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Iterates entries in ascending key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut iter = Iter { stack: Vec::new() };
        iter.push_left(&self.root);
        iter
    }

    /// Iterates keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    /// Whether the two maps share their entire root (trivially equal).
    fn same_root(&self, other: &Self) -> bool {
        match (&self.root, &other.root) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }

    /// Diagnostic: total tree nodes (one per entry in this representation).
    pub fn node_count(&self) -> usize {
        size(&self.root)
    }

    /// Diagnostic: how many of `self`'s tree nodes are the *same
    /// allocation* as a node reachable from `other` — the structure a fork
    /// shares with its sibling instead of copying. A shared node implies
    /// its whole subtree is shared (persistent trees never mutate a
    /// reachable node), so matches are counted subtree-at-a-time.
    pub fn shared_node_count(&self, other: &Self) -> usize {
        let mut theirs = std::collections::HashSet::new();
        fn collect<K, V>(
            link: &Link<K, V>,
            out: &mut std::collections::HashSet<*const Node<K, V>>,
        ) {
            if let Some(node) = link {
                if out.insert(Arc::as_ptr(node)) {
                    collect(&node.left, out);
                    collect(&node.right, out);
                }
            }
        }
        collect(&other.root, &mut theirs);
        fn count<K, V>(
            link: &Link<K, V>,
            theirs: &std::collections::HashSet<*const Node<K, V>>,
        ) -> usize {
            match link {
                None => 0,
                Some(node) if theirs.contains(&Arc::as_ptr(node)) => node.size,
                Some(node) => count(&node.left, theirs) + count(&node.right, theirs),
            }
        }
        count(&self.root, &theirs)
    }
}

impl<K: Ord, V> OrdMap<K, V> {
    /// The value bound to `key`, if any.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut cur = &self.root;
        while let Some(node) = cur {
            match key.cmp(&node.key) {
                Ordering::Less => cur = &node.left,
                Ordering::Greater => cur = &node.right,
                Ordering::Equal => return Some(&node.value),
            }
        }
        None
    }

    /// Whether `key` is bound.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// The entries whose keys the monotonic comparator maps to
    /// [`Ordering::Equal`], in ascending key order, in O(log n + m).
    ///
    /// `cmp` positions a key relative to the wanted window: `Less` = below
    /// it, `Equal` = inside it, `Greater` = above it. It must be monotonic
    /// with respect to the key order or the result is unspecified.
    pub fn range_by<F: Fn(&K) -> Ordering>(&self, cmp: F) -> Vec<(&K, &V)> {
        fn walk<'a, K, V, F: Fn(&K) -> Ordering>(
            link: &'a Link<K, V>,
            cmp: &F,
            out: &mut Vec<(&'a K, &'a V)>,
        ) {
            let Some(node) = link else { return };
            match cmp(&node.key) {
                // Key below the window: everything interesting is right.
                Ordering::Less => walk(&node.right, cmp, out),
                // Key above the window: everything interesting is left.
                Ordering::Greater => walk(&node.left, cmp, out),
                Ordering::Equal => {
                    walk(&node.left, cmp, out);
                    out.push((&node.key, &node.value));
                    walk(&node.right, cmp, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &cmp, &mut out);
        out
    }
}

impl<K: Ord + Clone, V: Clone> OrdMap<K, V> {
    /// Binds `key` to `value`, returning the previous binding if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let (root, old) = insert(&self.root, key, value);
        self.root = root;
        old
    }

    /// Removes `key`, returning its binding if any.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (root, old) = remove(&self.root, key);
        if old.is_some() {
            self.root = root;
        }
        old
    }
}

fn insert<K: Ord + Clone, V: Clone>(
    link: &Link<K, V>,
    key: K,
    value: V,
) -> (Link<K, V>, Option<V>) {
    let Some(node) = link else {
        return (mk(key, value, None, None), None);
    };
    match key.cmp(&node.key) {
        Ordering::Equal => {
            let old = node.value.clone();
            (
                mk(key, value, node.left.clone(), node.right.clone()),
                Some(old),
            )
        }
        Ordering::Less => {
            let (left, old) = insert(&node.left, key, value);
            let rebuilt = balance(
                node.key.clone(),
                node.value.clone(),
                left,
                node.right.clone(),
            );
            (rebuilt, old)
        }
        Ordering::Greater => {
            let (right, old) = insert(&node.right, key, value);
            let rebuilt = balance(
                node.key.clone(),
                node.value.clone(),
                node.left.clone(),
                right,
            );
            (rebuilt, old)
        }
    }
}

fn remove<K: Ord + Clone, V: Clone>(link: &Link<K, V>, key: &K) -> (Link<K, V>, Option<V>) {
    let Some(node) = link else {
        return (None, None);
    };
    match key.cmp(&node.key) {
        Ordering::Equal => {
            let old = node.value.clone();
            (glue(&node.left, &node.right), Some(old))
        }
        Ordering::Less => {
            let (left, old) = remove(&node.left, key);
            if old.is_none() {
                return (link.clone(), None);
            }
            (
                balance(
                    node.key.clone(),
                    node.value.clone(),
                    left,
                    node.right.clone(),
                ),
                old,
            )
        }
        Ordering::Greater => {
            let (right, old) = remove(&node.right, key);
            if old.is_none() {
                return (link.clone(), None);
            }
            (
                balance(
                    node.key.clone(),
                    node.value.clone(),
                    node.left.clone(),
                    right,
                ),
                old,
            )
        }
    }
}

/// Joins two subtrees whose key ranges are disjoint and adjacent (every key
/// in `left` < every key in `right`), as after deleting their parent.
fn glue<K: Ord + Clone, V: Clone>(left: &Link<K, V>, right: &Link<K, V>) -> Link<K, V> {
    match (left, right) {
        (None, r) => r.clone(),
        (l, None) => l.clone(),
        (l, r) => {
            let (k, v, rest) = delete_min(r.as_ref().expect("right is non-empty"));
            balance(k, v, l.clone(), rest)
        }
    }
}

fn delete_min<K: Ord + Clone, V: Clone>(node: &Arc<Node<K, V>>) -> (K, V, Link<K, V>) {
    match &node.left {
        None => (node.key.clone(), node.value.clone(), node.right.clone()),
        Some(left) => {
            let (k, v, rest) = delete_min(left);
            (
                k,
                v,
                balance(
                    node.key.clone(),
                    node.value.clone(),
                    rest,
                    node.right.clone(),
                ),
            )
        }
    }
}

/// Rebuilds a node, restoring the weight-balance invariant with at most a
/// double rotation (sufficient after a single insert or remove).
fn balance<K: Clone, V: Clone>(
    key: K,
    value: V,
    left: Link<K, V>,
    right: Link<K, V>,
) -> Link<K, V> {
    let (ls, rs) = (size(&left), size(&right));
    if ls + rs <= 1 {
        return mk(key, value, left, right);
    }
    if rs > DELTA * ls {
        // Right too heavy.
        let r = right.expect("right is non-empty");
        if size(&r.left) < RATIO * size(&r.right) {
            // Single left rotation.
            let inner = mk(key, value, left, r.left.clone());
            return mk(r.key.clone(), r.value.clone(), inner, r.right.clone());
        }
        // Double rotation through r.left.
        let rl = r.left.as_ref().expect("inner grandchild is non-empty");
        let new_left = mk(key, value, left, rl.left.clone());
        let new_right = mk(
            r.key.clone(),
            r.value.clone(),
            rl.right.clone(),
            r.right.clone(),
        );
        return mk(rl.key.clone(), rl.value.clone(), new_left, new_right);
    }
    if ls > DELTA * rs {
        // Left too heavy.
        let l = left.expect("left is non-empty");
        if size(&l.right) < RATIO * size(&l.left) {
            // Single right rotation.
            let inner = mk(key, value, l.right.clone(), right);
            return mk(l.key.clone(), l.value.clone(), l.left.clone(), inner);
        }
        // Double rotation through l.right.
        let lr = l.right.as_ref().expect("inner grandchild is non-empty");
        let new_left = mk(
            l.key.clone(),
            l.value.clone(),
            l.left.clone(),
            lr.left.clone(),
        );
        let new_right = mk(key, value, lr.right.clone(), right);
        return mk(lr.key.clone(), lr.value.clone(), new_left, new_right);
    }
    mk(key, value, left, right)
}

/// In-order iterator over an [`OrdMap`].
pub struct Iter<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
}

impl<K, V> Clone for Iter<'_, K, V> {
    fn clone(&self) -> Self {
        Iter {
            stack: self.stack.clone(),
        }
    }
}

impl<'a, K, V> Iter<'a, K, V> {
    fn push_left(&mut self, mut link: &'a Link<K, V>) {
        while let Some(node) = link {
            self.stack.push(node);
            link = &node.left;
        }
    }
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.stack.pop()?;
        self.push_left(&node.right);
        Some((&node.key, &node.value))
    }
}

impl<'a, K, V> IntoIterator for &'a OrdMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = Iter<'a, K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<K: Ord + Clone, V: Clone> FromIterator<(K, V)> for OrdMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = OrdMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl<K: Ord + Clone, V: Clone> Extend<(K, V)> for OrdMap<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

impl<K: PartialEq, V: PartialEq> PartialEq for OrdMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        if self.same_root(other) {
            return true;
        }
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl<K: Eq, V: Eq> Eq for OrdMap<K, V> {}

impl<K: Hash, V: Hash> Hash for OrdMap<K, V> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Mirror BTreeMap's stream: a `write_length_prefix` (which lowers
        // to `write_usize` on hashers that don't override it — all of
        // ours), then the entries in key order.
        state.write_usize(self.len());
        for (k, v) in self.iter() {
            k.hash(state);
            v.hash(state);
        }
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for OrdMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Serialize, V: Serialize> Serialize for OrdMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Same shape as BTreeMap: object for string/number-renderable keys,
        // array of [key, value] pairs otherwise.
        serde::serialize_map_entries(self.iter(), serializer)
    }
}

impl<'de, K, V> Deserialize<'de> for OrdMap<K, V>
where
    K: DeserializeOwned + Ord + Clone,
    V: DeserializeOwned + Clone,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let pairs: Vec<(K, V)> = serde::deserialize_map_entries(deserializer.take_value()?)?;
        Ok(pairs.into_iter().collect())
    }
}

// ---------------------------------------------------------------------------
// Vector
// ---------------------------------------------------------------------------

/// Elements per frozen chunk. Forks copy at most this many elements (the
/// mutable tail) plus one Arc per frozen chunk.
const CHUNK: usize = 64;

/// A persistent, append-friendly sequence: frozen `Arc`-shared chunks plus
/// a small mutable tail.
///
/// Cloning copies the chunk table (one `Arc` bump per `CHUNK` elements)
/// and the tail — not the elements of the shared history. Push is amortized
/// O(1). Iteration order and serialization are identical to `Vec`.
pub struct Vector<T> {
    chunks: Vec<Arc<Vec<T>>>,
    tail: Vec<T>,
}

impl<T> Clone for Vector<T>
where
    T: Clone,
{
    fn clone(&self) -> Self {
        Vector {
            chunks: self.chunks.clone(),
            tail: self.tail.clone(),
        }
    }
}

impl<T> Default for Vector<T> {
    fn default() -> Self {
        Vector {
            chunks: Vec::new(),
            tail: Vec::new(),
        }
    }
}

impl<T> Vector<T> {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        Vector::default()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.chunks.len() * CHUNK + self.tail.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty() && self.tail.is_empty()
    }

    /// The element at `index`, if in bounds.
    pub fn get(&self, index: usize) -> Option<&T> {
        let frozen = self.chunks.len() * CHUNK;
        if index < frozen {
            Some(&self.chunks[index / CHUNK][index % CHUNK])
        } else {
            self.tail.get(index - frozen)
        }
    }

    /// The last element, if any.
    pub fn last(&self) -> Option<&T> {
        self.tail
            .last()
            .or_else(|| self.chunks.last().and_then(|c| c.last()))
    }

    /// Appends an element.
    pub fn push(&mut self, value: T) {
        self.tail.push(value);
        if self.tail.len() == CHUNK {
            let frozen = std::mem::take(&mut self.tail);
            self.chunks.push(Arc::new(frozen));
        }
    }

    /// Iterates the elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks
            .iter()
            .flat_map(|c| c.iter())
            .chain(self.tail.iter())
    }

    /// Diagnostic: elements living in frozen `Arc`-shared chunks (the rest
    /// sit in the mutable tail, which every clone copies).
    pub fn frozen_len(&self) -> usize {
        self.chunks.len() * CHUNK
    }

    /// Diagnostic: how many elements of `self` live in a chunk that is the
    /// *same allocation* as the corresponding chunk of `other`. Chunks are
    /// append-only, so comparison is positional.
    pub fn shared_len(&self, other: &Self) -> usize {
        self.chunks
            .iter()
            .zip(other.chunks.iter())
            .take_while(|(a, b)| Arc::ptr_eq(a, b))
            .count()
            * CHUNK
    }

    /// Iterates the elements from `start` (inclusive) to the end, skipping
    /// whole frozen chunks in O(start / CHUNK).
    pub fn iter_from(&self, start: usize) -> impl Iterator<Item = &T> {
        let first_chunk = (start / CHUNK).min(self.chunks.len());
        let skipped = first_chunk * CHUNK;
        self.chunks[first_chunk..]
            .iter()
            .flat_map(|c| c.iter())
            .chain(self.tail.iter())
            .skip(start - skipped)
    }
}

impl<T: Clone> Vector<T> {
    /// Copies the elements into a `Vec`.
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().cloned().collect()
    }
}

impl<T> FromIterator<T> for Vector<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Vector::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<T> Extend<T> for Vector<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<T> From<Vec<T>> for Vector<T> {
    fn from(items: Vec<T>) -> Self {
        items.into_iter().collect()
    }
}

impl<T: PartialEq> PartialEq for Vector<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl<T: Eq> Eq for Vector<T> {}

impl<T: Hash> Hash for Vector<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_usize(self.len());
        for item in self.iter() {
            item.hash(state);
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Vector<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: Serialize> Serialize for Vector<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Same shape as Vec: a JSON array.
        let mut items = Vec::with_capacity(self.len());
        for item in self.iter() {
            items.push(serde::to_value(item)?);
        }
        serializer.serialize_value(serde::Value::Array(items))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vector<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items: Vec<T> = Vec::deserialize(deserializer)?;
        Ok(items.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// Deterministic pseudo-random stream (xorshift) — no rand dependency.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn matches_btreemap_under_random_ops() {
        let mut rng = Rng(0x9E3779B97F4A7C15);
        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        let mut map: OrdMap<u64, u64> = OrdMap::new();
        for _ in 0..4000 {
            let k = rng.next() % 512;
            if rng.next().is_multiple_of(4) {
                assert_eq!(map.remove(&k), reference.remove(&k));
            } else {
                let v = rng.next();
                assert_eq!(map.insert(k, v), reference.insert(k, v));
            }
            assert_eq!(map.len(), reference.len());
        }
        let got: Vec<_> = map.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<_> = reference.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want);
        for k in 0..512 {
            assert_eq!(map.get(&k), reference.get(&k));
        }
    }

    #[test]
    fn sequential_inserts_stay_balanced() {
        let mut map: OrdMap<u32, u32> = OrdMap::new();
        for i in 0..4096 {
            map.insert(i, i);
        }
        fn depth<K, V>(link: &Link<K, V>) -> usize {
            link.as_ref()
                .map_or(0, |n| 1 + depth(&n.left).max(depth(&n.right)))
        }
        // Weight-balanced trees with delta = 3 stay within ~2 log2 n.
        assert!(depth(&map.root) <= 2 * 12 + 2, "depth {}", depth(&map.root));
    }

    #[test]
    fn clone_shares_structure_and_diverges_on_write() {
        let mut a: OrdMap<u32, &str> = OrdMap::new();
        for i in 0..100 {
            a.insert(i, "old");
        }
        let mut b = a.clone();
        assert!(a.same_root(&b));
        b.insert(50, "new");
        assert_eq!(a.get(&50), Some(&"old"));
        assert_eq!(b.get(&50), Some(&"new"));
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn weight_invariant_holds_after_mixed_ops() {
        fn check<K, V>(link: &Link<K, V>) {
            let Some(node) = link else { return };
            let (ls, rs) = (size(&node.left), size(&node.right));
            if ls + rs > 1 {
                assert!(ls <= DELTA * rs, "left-heavy violation {ls} vs {rs}");
                assert!(rs <= DELTA * ls, "right-heavy violation {ls} vs {rs}");
            }
            assert_eq!(node.size, ls + rs + 1);
            check(&node.left);
            check(&node.right);
        }
        let mut rng = Rng(42);
        let mut map: OrdMap<u64, u64> = OrdMap::new();
        for _ in 0..2000 {
            let k = rng.next() % 256;
            if rng.next().is_multiple_of(3) {
                map.remove(&k);
            } else {
                map.insert(k, k);
            }
        }
        check(&map.root);
    }

    #[test]
    fn serializes_like_btreemap_with_number_keys() {
        let mut reference: BTreeMap<u32, String> = BTreeMap::new();
        let mut map: OrdMap<u32, String> = OrdMap::new();
        for i in [5u32, 1, 3] {
            reference.insert(i, format!("v{i}"));
            map.insert(i, format!("v{i}"));
        }
        assert_eq!(
            serde_json::to_string(&map).unwrap(),
            serde_json::to_string(&reference).unwrap()
        );
        let back: OrdMap<u32, String> =
            serde_json::from_str(&serde_json::to_string(&map).unwrap()).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn serializes_like_btreemap_with_structured_keys() {
        let mut reference: BTreeMap<(u32, u32), u32> = BTreeMap::new();
        let mut map: OrdMap<(u32, u32), u32> = OrdMap::new();
        for (a, b) in [(2, 1), (1, 9), (1, 2)] {
            reference.insert((a, b), a + b);
            map.insert((a, b), a + b);
        }
        assert_eq!(
            serde_json::to_string(&map).unwrap(),
            serde_json::to_string(&reference).unwrap()
        );
        let back: OrdMap<(u32, u32), u32> =
            serde_json::from_str(&serde_json::to_string(&map).unwrap()).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn hashes_like_btreemap() {
        // With a hasher that only implements `write`, OrdMap and BTreeMap
        // must produce identical streams (this is what keeps persisted
        // probe digests stable).
        #[derive(Default)]
        struct Collect(Vec<u8>);
        impl Hasher for Collect {
            fn finish(&self) -> u64 {
                0
            }
            fn write(&mut self, bytes: &[u8]) {
                self.0.extend_from_slice(bytes);
            }
        }
        let mut reference: BTreeMap<u32, u32> = BTreeMap::new();
        let mut map: OrdMap<u32, u32> = OrdMap::new();
        for i in [7u32, 2, 9, 4] {
            reference.insert(i, i * 10);
            map.insert(i, i * 10);
        }
        let mut a = Collect::default();
        let mut b = Collect::default();
        map.hash(&mut a);
        reference.hash(&mut b);
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn range_by_finds_contiguous_window() {
        let mut map: OrdMap<(u32, u32), u32> = OrdMap::new();
        for a in 0..8 {
            for b in 0..8 {
                map.insert((a, b), a * 100 + b);
            }
        }
        let window = map.range_by(|k| k.0.cmp(&3));
        assert_eq!(window.len(), 8);
        assert!(window.iter().all(|(k, _)| k.0 == 3));
        let keys: Vec<u32> = window.iter().map(|(k, _)| k.1).collect();
        assert_eq!(keys, (0..8).collect::<Vec<_>>());
        assert!(map.range_by(|k| k.0.cmp(&99)).is_empty());
    }

    #[test]
    fn vector_behaves_like_vec() {
        let mut v: Vector<u32> = Vector::new();
        let mut reference: Vec<u32> = Vec::new();
        for i in 0..500 {
            v.push(i);
            reference.push(i);
            assert_eq!(v.len(), reference.len());
        }
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), reference);
        assert_eq!(v.get(0), Some(&0));
        assert_eq!(v.get(499), Some(&499));
        assert_eq!(v.get(500), None);
        assert_eq!(v.last(), Some(&499));
        for start in [0, 1, 63, 64, 65, 200, 499, 500, 900] {
            assert_eq!(
                v.iter_from(start).copied().collect::<Vec<_>>(),
                reference[start.min(reference.len())..].to_vec(),
                "start {start}"
            );
        }
    }

    #[test]
    fn vector_clone_shares_frozen_chunks() {
        let mut v: Vector<u32> = (0..300).collect();
        let w = v.clone();
        v.push(300);
        assert_eq!(w.len(), 300);
        assert_eq!(v.len(), 301);
        assert_eq!(
            w.iter().copied().collect::<Vec<_>>(),
            (0..300).collect::<Vec<_>>()
        );
        // Frozen chunks are shared, not copied.
        assert!(Arc::ptr_eq(&v.chunks[0], &w.chunks[0]));
    }

    #[test]
    fn sharing_diagnostics_track_path_copies() {
        let base: OrdMap<u32, u32> = (0..127).map(|i| (i, i)).collect();
        let same = base.clone();
        assert_eq!(same.shared_node_count(&base), base.node_count());

        let mut forked = base.clone();
        forked.insert(42, 999);
        let shared = forked.shared_node_count(&base);
        assert_eq!(forked.node_count(), 127);
        // A single insert path-copies O(log n) nodes; everything else is
        // still the parent's allocation.
        assert!(shared >= 127 - 8, "only {shared} of 127 nodes shared");
        assert!(shared < 127);

        let disjoint: OrdMap<u32, u32> = (0..127).map(|i| (i, i)).collect();
        assert_eq!(disjoint.shared_node_count(&base), 0);

        let mut v: Vector<u32> = (0..130).collect();
        let w = v.clone();
        v.push(130);
        assert_eq!(v.shared_len(&w), 128);
        assert_eq!(v.frozen_len(), 128);
    }

    #[test]
    fn vector_serializes_like_vec() {
        let v: Vector<u32> = (0..130).collect();
        let reference: Vec<u32> = (0..130).collect();
        assert_eq!(
            serde_json::to_string(&v).unwrap(),
            serde_json::to_string(&reference).unwrap()
        );
        let back: Vector<u32> = serde_json::from_str(&serde_json::to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }
}
