//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize` / `Deserialize` impls targeting the in-tree serde
//! shim's [`Value`]-based data model. The input is parsed directly from the
//! `proc_macro` token stream (no `syn`/`quote`, which are unavailable in
//! this offline build). The supported input grammar is the slice this
//! workspace uses: plain structs (named, tuple, unit), externally-tagged
//! enums with unit / tuple / struct variants, simple generic parameter
//! lists, and the `#[serde(with = "module")]`, `#[serde(default)]` (bare
//! flag — a missing field deserializes to `Default`), and `#[serde(skip)]`
//! field attributes on named struct fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let code = match parse_input(&tokens) {
        Ok(item) => match mode {
            Mode::Serialize => gen_serialize(&item),
            Mode::Deserialize => gen_deserialize(&item),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().unwrap_or_else(|e| {
        format!("compile_error!(\"serde_derive shim produced unparsable code: {e:?}\");")
            .parse()
            .unwrap()
    })
}

// ---------------------------------------------------------------------------
// Parsed shape
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    /// Parameter declarations as written (`K: Ord`), one per parameter.
    params: Vec<Param>,
    body: Body,
}

struct Param {
    decl: String,
    name: String,
    is_type: bool,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Fields {
    Unit,
    Named(Vec<Field>),
    Tuple(Vec<Field>),
}

struct Field {
    /// `None` for tuple fields.
    name: Option<String>,
    /// Module path from `#[serde(with = "...")]`, if present.
    with: Option<String>,
    /// `#[serde(default)]`: a missing field deserializes to `Default`.
    default: bool,
    /// `#[serde(skip)]`: never serialized; deserializes to `Default`.
    skip: bool,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    tokens: &'a [TokenTree],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&'a TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<&'a TokenTree> {
        let t = self.tokens.get(self.pos);
        self.pos += 1;
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Skips one attribute (`#[...]`) if present; returns its bracket group.
fn eat_attr<'a>(c: &mut Cursor<'a>) -> Option<&'a TokenTree> {
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '#' {
            c.pos += 1;
            return c.next();
        }
    }
    None
}

/// Skips `pub` / `pub(...)` if present.
fn eat_vis(c: &mut Cursor<'_>) {
    if let Some(t) = c.peek() {
        if is_ident(t, "pub") {
            c.pos += 1;
            if let Some(TokenTree::Group(g)) = c.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    c.pos += 1;
                }
            }
        }
    }
}

/// Extracts the `with = "..."` path from a `#[serde(...)]` attribute group,
/// if this is one.
fn with_from_attr(attr: &TokenTree) -> Option<String> {
    let TokenTree::Group(g) = attr else {
        return None;
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    if inner.is_empty() || !is_ident(&inner[0], "serde") {
        return None;
    }
    let TokenTree::Group(args) = inner.get(1)? else {
        return None;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < args.len() {
        if is_ident(&args[i], "with") {
            if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                (args.get(i + 1), args.get(i + 2))
            {
                if eq.as_char() == '=' {
                    let s = lit.to_string();
                    return Some(s.trim_matches('"').to_string());
                }
            }
        }
        i += 1;
    }
    None
}

/// True when a `#[serde(...)]` attribute group carries the bare flag
/// `flag` (e.g. `default` or `skip`) at any comma position.
fn flag_in_attr(attr: &TokenTree, flag: &str) -> bool {
    let TokenTree::Group(g) = attr else {
        return false;
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    if inner.is_empty() || !is_ident(&inner[0], "serde") {
        return false;
    }
    let Some(TokenTree::Group(args)) = inner.get(1) else {
        return false;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < args.len() {
        if is_ident(&args[i], flag) {
            // A bare flag is followed by `,` or the end — `default = "f"`
            // (function paths) is not supported and must not match.
            match args.get(i + 1) {
                None => return true,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => return true,
                _ => {}
            }
        }
        i += 1;
    }
    false
}

fn render(tokens: &[TokenTree]) -> String {
    tokens.iter().cloned().collect::<TokenStream>().to_string()
}

fn parse_input(tokens: &[TokenTree]) -> Result<Item, String> {
    let mut c = Cursor { tokens, pos: 0 };
    // Skip outer attributes and visibility.
    loop {
        if eat_attr(&mut c).is_some() {
            continue;
        }
        match c.peek() {
            Some(t) if is_ident(t, "pub") => eat_vis(&mut c),
            _ => break,
        }
    }
    let kind = match c.next() {
        Some(t) if is_ident(t, "struct") => "struct",
        Some(t) if is_ident(t, "enum") => "enum",
        other => return Err(format!("expected struct or enum, found {other:?}")),
    };
    let name = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    let params = if c.eat_punct('<') {
        parse_generics(&mut c)?
    } else {
        Vec::new()
    };
    if let Some(t) = c.peek() {
        if is_ident(t, "where") {
            return Err("serde_derive shim: `where` clauses are not supported".to_string());
        }
    }
    let body = if kind == "struct" {
        Body::Struct(parse_struct_body(&mut c)?)
    } else {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Body::Enum(parse_variants(&inner)?)
            }
            other => return Err(format!("expected enum body, found {other:?}")),
        }
    };
    Ok(Item { name, params, body })
}

/// Parses a generic parameter list, cursor positioned just past `<`.
fn parse_generics(c: &mut Cursor<'_>) -> Result<Vec<Param>, String> {
    let mut depth = 1usize;
    let mut current: Vec<TokenTree> = Vec::new();
    let mut raw_params: Vec<Vec<TokenTree>> = Vec::new();
    loop {
        let t = c
            .next()
            .ok_or_else(|| "unterminated generic parameter list".to_string())?;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                current.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    if !current.is_empty() {
                        raw_params.push(std::mem::take(&mut current));
                    }
                    break;
                }
                current.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                if !current.is_empty() {
                    raw_params.push(std::mem::take(&mut current));
                }
            }
            _ => current.push(t.clone()),
        }
    }
    let mut params = Vec::new();
    for raw in raw_params {
        let decl = render(&raw);
        let (name, is_type) = match &raw[0] {
            TokenTree::Punct(p) if p.as_char() == '\'' => match raw.get(1) {
                Some(TokenTree::Ident(i)) => (format!("'{i}"), false),
                _ => return Err("malformed lifetime parameter".to_string()),
            },
            TokenTree::Ident(i) if i.to_string() == "const" => match raw.get(1) {
                Some(TokenTree::Ident(n)) => (n.to_string(), false),
                _ => return Err("malformed const parameter".to_string()),
            },
            TokenTree::Ident(i) => (i.to_string(), true),
            other => return Err(format!("unsupported generic parameter {other:?}")),
        };
        params.push(Param {
            decl,
            name,
            is_type,
        });
    }
    Ok(params)
}

fn parse_struct_body(c: &mut Cursor<'_>) -> Result<Fields, String> {
    match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok(Fields::Named(parse_named_fields(&inner)?))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok(Fields::Tuple(parse_tuple_fields(&inner)?))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Fields::Unit),
        other => Err(format!("expected struct body, found {other:?}")),
    }
}

fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut c = Cursor { tokens, pos: 0 };
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let mut with = None;
        let mut default = false;
        let mut skip = false;
        while let Some(attr) = eat_attr(&mut c) {
            if let Some(w) = with_from_attr(attr) {
                with = Some(w);
            }
            default |= flag_in_attr(attr, "default");
            skip |= flag_in_attr(attr, "skip");
        }
        eat_vis(&mut c);
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        if !c.eat_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        skip_type(&mut c);
        fields.push(Field {
            name: Some(name),
            with,
            default,
            skip,
        });
    }
    Ok(fields)
}

fn parse_tuple_fields(tokens: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut c = Cursor { tokens, pos: 0 };
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let mut with = None;
        while let Some(attr) = eat_attr(&mut c) {
            if let Some(w) = with_from_attr(attr) {
                with = Some(w);
            }
        }
        eat_vis(&mut c);
        skip_type(&mut c);
        fields.push(Field {
            name: None,
            with,
            default: false,
            skip: false,
        });
    }
    Ok(fields)
}

/// Consumes a type, stopping after the angle-depth-0 `,` that terminates it
/// (or at end of stream).
fn skip_type(c: &mut Cursor<'_>) {
    let mut depth = 0usize;
    while let Some(t) = c.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                c.pos += 1;
                return;
            }
            _ => {}
        }
        c.pos += 1;
    }
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut c = Cursor { tokens, pos: 0 };
    let mut variants = Vec::new();
    while c.peek().is_some() {
        while eat_attr(&mut c).is_some() {}
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                c.pos += 1;
                Fields::Named(parse_named_fields(&inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                c.pos += 1;
                Fields::Tuple(parse_tuple_fields(&inner)?)
            }
            _ => Fields::Unit,
        };
        // Discriminants (`= expr`) are not used with serde in this workspace.
        if c.eat_punct('=') {
            return Err("serde_derive shim: explicit discriminants unsupported".to_string());
        }
        c.eat_punct(',');
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_generics(item: &Item, mode: Mode) -> (String, String) {
    let bound = match mode {
        Mode::Serialize => "::serde::Serialize",
        Mode::Deserialize => "::serde::DeserializeOwned",
    };
    let mut decls: Vec<String> = Vec::new();
    if mode == Mode::Deserialize {
        decls.push("'de".to_string());
    }
    let mut names: Vec<String> = Vec::new();
    for p in &item.params {
        if p.is_type {
            if p.decl.contains(':') {
                decls.push(format!("{} + {bound}", p.decl));
            } else {
                decls.push(format!("{}: {bound}", p.decl));
            }
        } else {
            decls.push(p.decl.clone());
        }
        names.push(p.name.clone());
    }
    let impl_g = if decls.is_empty() {
        String::new()
    } else {
        format!("<{}>", decls.join(", "))
    };
    let ty_g = if names.is_empty() {
        String::new()
    } else {
        format!("<{}>", names.join(", "))
    };
    (impl_g, ty_g)
}

fn gen_serialize(item: &Item) -> String {
    let (impl_g, ty_g) = impl_generics(item, Mode::Serialize);
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let expr = ser_fields_expr(name, fields, "self.");
            format!("serializer.serialize_value({expr})")
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&ser_variant_arm(name, v));
            }
            format!("let __value = match self {{ {arms} }};\nserializer.serialize_value(__value)")
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl{impl_g} ::serde::Serialize for {name}{ty_g} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, serializer: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// Expression producing the `Value` for a set of struct fields accessed via
/// `prefix` (`self.` for structs, empty for bound variant bindings).
fn ser_fields_expr(ty: &str, fields: &Fields, prefix: &str) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Named(fs) => {
            let mut pairs = Vec::new();
            for f in fs {
                if f.skip {
                    continue;
                }
                let fname = f.name.as_deref().unwrap();
                let access = format!("&{prefix}{fname}");
                let value = match &f.with {
                    Some(path) => {
                        format!("{path}::serialize({access}, ::serde::ValueSerializer)?")
                    }
                    None => format!("::serde::to_value({access})?"),
                };
                pairs.push(format!("(::std::string::String::from({fname:?}), {value})"));
            }
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        Fields::Tuple(fs) if fs.len() == 1 => {
            let _ = ty;
            format!("::serde::to_value(&{prefix}0)?")
        }
        Fields::Tuple(fs) => {
            let items: Vec<String> = (0..fs.len())
                .map(|i| format!("::serde::to_value(&{prefix}{i})?"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
    }
}

fn ser_variant_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.fields {
        Fields::Unit => format!(
            "{name}::{vname} => ::serde::Value::String(::std::string::String::from({vname:?})),\n"
        ),
        Fields::Tuple(fs) => {
            let binds: Vec<String> = (0..fs.len()).map(|i| format!("__f{i}")).collect();
            let payload = if fs.len() == 1 {
                "::serde::to_value(__f0)?".to_string()
            } else {
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::to_value({b})?"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            };
            format!(
                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![\
                     (::std::string::String::from({vname:?}), {payload})]),\n",
                binds.join(", ")
            )
        }
        Fields::Named(fs) => {
            let binds: Vec<String> = fs.iter().map(|f| f.name.clone().unwrap()).collect();
            let pairs: Vec<String> = binds
                .iter()
                .map(|b| format!("(::std::string::String::from({b:?}), ::serde::to_value({b})?)"))
                .collect();
            format!(
                "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![\
                     (::std::string::String::from({vname:?}), \
                      ::serde::Value::Object(::std::vec![{}]))]),\n",
                binds.join(", "),
                pairs.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let (impl_g, ty_g) = impl_generics(item, Mode::Deserialize);
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => de_struct_body(name, fields),
        Body::Enum(variants) => de_enum_body(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl<'de{rest}> ::serde::Deserialize<'de> for {name}{ty_g} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(deserializer: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}",
        rest = impl_g
            .strip_prefix("<'de")
            .and_then(|s| s.strip_suffix('>'))
            .unwrap_or(""),
    )
}

fn de_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => {
            format!("let _ = deserializer.take_value()?;\n::core::result::Result::Ok({name})")
        }
        Fields::Named(fs) => {
            let inits: Vec<String> = fs
                .iter()
                .map(|f| {
                    let fname = f.name.as_deref().unwrap();
                    if f.skip {
                        return format!("{fname}: ::core::default::Default::default()");
                    }
                    let take = format!("::serde::take_field(&mut __obj, {fname:?}, {name:?})?");
                    match (&f.with, f.default) {
                        (Some(path), _) => format!(
                            "{fname}: {path}::deserialize(::serde::ValueDeserializer::new({take}))?"
                        ),
                        (None, true) => format!(
                            "{fname}: match ::serde::take_field_opt(&mut __obj, {fname:?}) {{\n\
                                 ::core::option::Option::Some(__v) => ::serde::from_value(__v)?,\n\
                                 ::core::option::Option::None => ::core::default::Default::default(),\n\
                             }}"
                        ),
                        (None, false) => format!("{fname}: ::serde::from_value({take})?"),
                    }
                })
                .collect();
            format!(
                "let mut __obj = ::serde::expect_object(deserializer.take_value()?, {name:?})?;\n\
                 let _ = &mut __obj;\n\
                 ::core::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Fields::Tuple(fs) if fs.len() == 1 => format!(
            "::core::result::Result::Ok({name}(::serde::from_value(deserializer.take_value()?)?))"
        ),
        Fields::Tuple(fs) => {
            let inits: Vec<String> = (0..fs.len())
                .map(|_| {
                    format!(
                        "::serde::from_value(__items.next().ok_or(\
                             ::serde::Error::invalid_type({name:?}))?)?"
                    )
                })
                .collect();
            format!(
                "let mut __items = ::serde::expect_array(deserializer.take_value()?, {name:?})?\
                     .into_iter();\n\
                 ::core::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
    }
}

fn de_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut payload_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => {
                unit_arms.push_str(&format!(
                    "{vname:?} => ::core::result::Result::Ok({name}::{vname}),\n"
                ));
            }
            Fields::Tuple(fs) if fs.len() == 1 => {
                payload_arms.push_str(&format!(
                    "{vname:?} => ::core::result::Result::Ok(\
                         {name}::{vname}(::serde::from_value(__v)?)),\n"
                ));
            }
            Fields::Tuple(fs) => {
                let inits: Vec<String> = (0..fs.len())
                    .map(|_| {
                        format!(
                            "::serde::from_value(__items.next().ok_or(\
                                 ::serde::Error::invalid_type({vname:?}))?)?"
                        )
                    })
                    .collect();
                payload_arms.push_str(&format!(
                    "{vname:?} => {{\n\
                         let mut __items = ::serde::expect_array(__v, {vname:?})?.into_iter();\n\
                         ::core::result::Result::Ok({name}::{vname}({}))\n\
                     }}\n",
                    inits.join(", ")
                ));
            }
            Fields::Named(fs) => {
                let inits: Vec<String> = fs
                    .iter()
                    .map(|f| {
                        let fname = f.name.as_deref().unwrap();
                        format!(
                            "{fname}: ::serde::from_value(\
                                 ::serde::take_field(&mut __obj, {fname:?}, {vname:?})?)?"
                        )
                    })
                    .collect();
                payload_arms.push_str(&format!(
                    "{vname:?} => {{\n\
                         let mut __obj = ::serde::expect_object(__v, {vname:?})?;\n\
                         let _ = &mut __obj;\n\
                         ::core::result::Result::Ok({name}::{vname} {{ {} }})\n\
                     }}\n",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "match deserializer.take_value()? {{\n\
             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 _ => ::core::result::Result::Err(\
                     ::serde::Error::unknown_variant(&__s, {name:?}).into()),\n\
             }},\n\
             ::serde::Value::Object(mut __pairs) => {{\n\
                 if __pairs.len() != 1 {{\n\
                     return ::core::result::Result::Err(\
                         ::serde::Error::invalid_type({name:?}).into());\n\
                 }}\n\
                 let (__k, __v) = __pairs.remove(0);\n\
                 let _ = &__v;\n\
                 match __k.as_str() {{\n\
                     {payload_arms}\
                     _ => ::core::result::Result::Err(\
                         ::serde::Error::unknown_variant(&__k, {name:?}).into()),\n\
                 }}\n\
             }}\n\
             _ => ::core::result::Result::Err(\
                 ::serde::Error::invalid_type({name:?}).into()),\n\
         }}"
    )
}
