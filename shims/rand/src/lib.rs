//! Offline stand-in for the `rand` crate.
//!
//! Provides `SeedableRng::seed_from_u64`, `Rng::gen_range` over the range
//! types this workspace samples, and a deterministic `StdRng` backed by
//! xoshiro256++ seeded through splitmix64 — the same construction the real
//! `rand` 0.8 `StdRng` documentation recommends for reproducible streams.
//! (The concrete stream differs from upstream `StdRng`; the workspace only
//! relies on determinism per seed, not on a specific stream.)

use std::ops::Range;

/// Trait for seeding a generator from a `u64`, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling interface, mirroring the slice of `rand::Rng` used here.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range` (half-open).
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// Samples a value of type `T` via [`Standard`]-style distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }
}

/// Types samplable from raw bits (`rng.gen()`).
pub trait Standard {
    /// Builds a sample from 64 uniform random bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits >> 63 == 1
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Range types usable with `gen_range`.
pub trait SampleRange: Sized {
    /// Samples uniformly from `range`.
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleRange for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for $ty {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<$ty>) -> $ty {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Rejection-free modulo; bias is irrelevant for the synthetic
                // data sizes this workspace draws.
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $ty
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Generator namespace, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // splitmix64 expansion of the 64-bit seed into the full state,
            // as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-5.0..5.0);
            assert!((-5.0..5.0).contains(&v));
            let n = rng.gen_range(0..10u64);
            assert!(n < 10);
        }
    }
}
