//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no access to a crates.io
//! registry, so the handful of external dependencies are vendored as small
//! in-tree shims under `shims/`. This crate reproduces exactly the slice of
//! serde's API that the workspace uses: the `Serialize` / `Deserialize`
//! traits (driven by the companion `serde_derive` proc-macro), a
//! self-describing [`Value`] tree that serializers and deserializers
//! exchange, and the `Serializer` / `Deserializer` traits in the shape the
//! hand-written `#[serde(with = "...")]` modules expect.
//!
//! The data model intentionally differs from real serde: instead of the
//! visitor architecture, a `Serializer` is anything that can accept a
//! finished [`Value`], and a `Deserializer` is anything that can produce
//! one. Derived impls lower structs and enums to the same externally-tagged
//! JSON-style shapes real serde uses, so `serde_json` output remains
//! conventional.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Error type shared by the in-tree serializers and deserializers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error carrying a custom message.
    pub fn custom<T: fmt::Display>(msg: T) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }

    /// Error for an enum payload naming no known variant.
    pub fn unknown_variant(variant: &str, ty: &str) -> Error {
        Error::custom(format!("unknown variant `{variant}` for {ty}"))
    }

    /// Error for a [`Value`] whose shape does not match the target type.
    pub fn invalid_type(expected: &str) -> Error {
        Error::custom(format!("invalid type: expected {expected}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A JSON-like number. Integers keep their signedness so round-trips are
/// lossless for the full `i64` / `u64` ranges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A signed integer.
    I64(i64),
    /// An unsigned integer outside (or simply stored as) `u64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
}

impl Number {
    /// Returns the number as `i64` if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I64(v) => Some(v),
            Number::U64(v) => i64::try_from(v).ok(),
            Number::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F64(_) => None,
        }
    }

    /// Returns the number as `u64` if it fits.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::I64(v) => u64::try_from(v).ok(),
            Number::U64(v) => Some(v),
            Number::F64(v) if v.fract() == 0.0 && v >= 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// Returns the number as `f64` (always possible, possibly lossy).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::I64(v) => v as f64,
            Number::U64(v) => v as f64,
            Number::F64(v) => v,
        }
    }
}

/// The self-describing tree exchanged between serializers and
/// deserializers. Objects preserve insertion order so derived structs
/// round-trip field order deterministically.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as an order-preserving pair list.
    Object(Vec<(String, Value)>),
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Inserts `Null` under `key` if absent (serde_json's `json[key] = v`
    /// semantics). Panics if `self` is not an object.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        match self {
            Value::Object(pairs) => {
                if let Some(i) = pairs.iter().position(|(k, _)| k == key) {
                    &mut pairs[i].1
                } else {
                    pairs.push((key.to_string(), Value::Null));
                    &mut pairs.last_mut().unwrap().1
                }
            }
            other => panic!("cannot index non-object value {other:?} by string key"),
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(items) => &mut items[idx],
            other => panic!("cannot index non-array value {other:?} by position"),
        }
    }
}

/// A sink that accepts one finished [`Value`].
///
/// `type Error: From<Error>` lets derived code use `?` on the in-tree
/// conversion helpers regardless of the concrete serializer.
pub trait Serializer: Sized {
    /// Result of a successful serialization.
    type Ok;
    /// Error produced by this serializer.
    type Error: From<Error>;

    /// Consumes the serializer with the final value.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A source that yields one [`Value`].
pub trait Deserializer<'de>: Sized {
    /// Error produced by this deserializer.
    type Error: From<Error> + fmt::Debug + fmt::Display;

    /// Consumes the deserializer, producing its value tree.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type that can lower itself to a [`Value`] through any [`Serializer`].
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A type that can rebuild itself from a [`Value`] pulled out of any
/// [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` out of `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Owned deserialization (no borrows from the input), as in real serde.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// The canonical serializer: returns the [`Value`] itself.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;

    fn serialize_value(self, value: Value) -> Result<Value, Error> {
        Ok(value)
    }
}

/// The canonical deserializer: wraps an already-built [`Value`].
pub struct ValueDeserializer {
    value: Value,
}

impl ValueDeserializer {
    /// Wraps `value` for deserialization.
    pub fn new(value: Value) -> ValueDeserializer {
        ValueDeserializer { value }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = Error;

    fn take_value(self) -> Result<Value, Error> {
        Ok(self.value)
    }
}

/// Serializes any `Serialize` type to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value.serialize(ValueSerializer)
}

/// Rebuilds a `Deserialize` type from a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::deserialize(ValueDeserializer::new(value))
}

// ---------------------------------------------------------------------------
// Helpers used by derive-generated code (stable names, but not a public API
// in any meaningful sense).
// ---------------------------------------------------------------------------

/// Unwraps `value` as an object, or reports `ty` in the error.
pub fn expect_object(value: Value, ty: &str) -> Result<Vec<(String, Value)>, Error> {
    match value {
        Value::Object(pairs) => Ok(pairs),
        other => Err(Error::custom(format!(
            "invalid type for {ty}: expected object, got {other:?}"
        ))),
    }
}

/// Unwraps `value` as an array, or reports `ty` in the error.
pub fn expect_array(value: Value, ty: &str) -> Result<Vec<Value>, Error> {
    match value {
        Value::Array(items) => Ok(items),
        other => Err(Error::custom(format!(
            "invalid type for {ty}: expected array, got {other:?}"
        ))),
    }
}

/// Removes the field `name` from a decoded object, or errors citing `ty`.
pub fn take_field(obj: &mut Vec<(String, Value)>, name: &str, ty: &str) -> Result<Value, Error> {
    match obj.iter().position(|(k, _)| k == name) {
        Some(i) => Ok(obj.remove(i).1),
        None => Err(Error::custom(format!("missing field `{name}` in {ty}"))),
    }
}

/// Removes the field `name` from a decoded object if present — the
/// `#[serde(default)]` path, where absence is not an error.
pub fn take_field_opt(obj: &mut Vec<(String, Value)>, name: &str) -> Option<Value> {
    obj.iter()
        .position(|(k, _)| k == name)
        .map(|i| obj.remove(i).1)
}

/// Parses a map key that was rendered as an object-key string back into its
/// typed form: tries the string itself first, then numeric readings. Mirrors
/// serde_json's integer-keyed-map convention.
pub fn from_key_str<T: DeserializeOwned>(key: &str) -> Result<T, Error> {
    if let Ok(v) = from_value(Value::String(key.to_string())) {
        return Ok(v);
    }
    if let Ok(n) = key.parse::<i64>() {
        if let Ok(v) = from_value(Value::Number(Number::I64(n))) {
            return Ok(v);
        }
    }
    if let Ok(n) = key.parse::<u64>() {
        if let Ok(v) = from_value(Value::Number(Number::U64(n))) {
            return Ok(v);
        }
    }
    if let Ok(n) = key.parse::<f64>() {
        if let Ok(v) = from_value(Value::Number(Number::F64(n))) {
            return Ok(v);
        }
    }
    Err(Error::custom(format!("cannot decode map key `{key}`")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! int_impls {
    ($($ty:ty => $variant:ident as $wide:ty),* $(,)?) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Number(Number::$variant(*self as $wide)))
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.take_value()? {
                    Value::Number(n) => {
                        let wide = match stringify!($variant) {
                            "I64" => n.as_i64().map(|v| v as i128),
                            _ => n.as_u64().map(|v| v as i128),
                        };
                        wide.and_then(|v| <$ty>::try_from(v).ok()).ok_or_else(|| {
                            D::Error::from(Error::custom(concat!(
                                "number out of range for ",
                                stringify!($ty)
                            )))
                        })
                    }
                    _ => Err(D::Error::from(Error::invalid_type(stringify!($ty)))),
                }
            }
        }
    )*};
}

int_impls! {
    i8 => I64 as i64,
    i16 => I64 as i64,
    i32 => I64 as i64,
    i64 => I64 as i64,
    isize => I64 as i64,
    u8 => U64 as u64,
    u16 => U64 as u64,
    u32 => U64 as u64,
    u64 => U64 as u64,
    usize => U64 as u64,
}

impl Serialize for i128 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        if let Ok(v) = i64::try_from(*self) {
            serializer.serialize_value(Value::Number(Number::I64(v)))
        } else if let Ok(v) = u64::try_from(*self) {
            serializer.serialize_value(Value::Number(Number::U64(v)))
        } else {
            // Out-of-range i128 values fall back to a tagged string so
            // round-trips stay lossless.
            serializer.serialize_value(Value::String(format!("#i128:{self}")))
        }
    }
}

impl<'de> Deserialize<'de> for i128 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Number(n) => {
                if let Some(v) = n.as_i64() {
                    Ok(v as i128)
                } else if let Some(v) = n.as_u64() {
                    Ok(v as i128)
                } else {
                    Err(D::Error::from(Error::invalid_type("i128")))
                }
            }
            Value::String(s) => s
                .strip_prefix("#i128:")
                .and_then(|rest| rest.parse::<i128>().ok())
                .ok_or_else(|| D::Error::from(Error::invalid_type("i128"))),
            _ => Err(D::Error::from(Error::invalid_type("i128"))),
        }
    }
}

macro_rules! float_impls {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Number(Number::F64(*self as f64)))
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.take_value()? {
                    Value::Number(n) => Ok(n.as_f64() as $ty),
                    _ => Err(D::Error::from(Error::invalid_type(stringify!($ty)))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Bool(b) => Ok(b),
            _ => Err(D::Error::from(Error::invalid_type("bool"))),
        }
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::String(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(D::Error::from(Error::invalid_type("char"))),
        }
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::String(self.clone()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::String(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::String(s) => Ok(s),
            _ => Err(D::Error::from(Error::invalid_type("string"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_value(Value::Null),
            Some(v) => serializer.serialize_value(to_value(v)?),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            other => {
                let inner =
                    T::deserialize(ValueDeserializer::new(other)).map_err(D::Error::from)?;
                Ok(Some(inner))
            }
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut items = Vec::with_capacity(self.len());
        for item in self {
            items.push(to_value(item)?);
        }
        serializer.serialize_value(Value::Array(items))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = expect_array(deserializer.take_value()?, "Vec").map_err(D::Error::from)?;
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            out.push(T::deserialize(ValueDeserializer::new(item)).map_err(D::Error::from)?);
        }
        Ok(out)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items: Vec<T> = Vec::deserialize(deserializer)?;
        items
            .try_into()
            .map_err(|_| D::Error::from(Error::invalid_type("fixed-size array")))
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Array(vec![$(to_value(&self.$idx)?),+]))
            }
        }

        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let mut items = expect_array(deserializer.take_value()?, "tuple")
                    .map_err(D::Error::from)?
                    .into_iter();
                Ok(($(
                    $name::deserialize(ValueDeserializer::new(items.next().ok_or_else(
                        || D::Error::from(Error::invalid_type("tuple element"))
                    )?)).map_err(D::Error::from)?,
                )+))
            }
        }
    )*};
}

tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, Z: 3)
}

/// Serializes a map: string-renderable keys become an object (matching
/// serde_json's convention, including integer keys), anything else becomes
/// an array of `[key, value]` pairs.
///
/// Public so map-like containers outside this crate (e.g. the persistent
/// `im` shim) can serialize with exactly the same shape as `BTreeMap`.
pub fn serialize_map_entries<'a, K, V, S, I>(entries: I, serializer: S) -> Result<S::Ok, S::Error>
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    S: Serializer,
    I: Iterator<Item = (&'a K, &'a V)> + Clone,
{
    let mut object = Vec::new();
    let mut stringly = true;
    for (k, _) in entries.clone() {
        match to_value(k)? {
            Value::String(s) => object.push(s),
            Value::Number(n) => object.push(render_number(n)),
            _ => {
                stringly = false;
                break;
            }
        }
    }
    if stringly {
        let pairs = object
            .into_iter()
            .zip(entries)
            .map(|(key, (_, v))| Ok((key, to_value(v)?)))
            .collect::<Result<Vec<_>, Error>>()?;
        serializer.serialize_value(Value::Object(pairs))
    } else {
        let pairs = entries
            .map(|(k, v)| Ok(Value::Array(vec![to_value(k)?, to_value(v)?])))
            .collect::<Result<Vec<_>, Error>>()?;
        serializer.serialize_value(Value::Array(pairs))
    }
}

fn render_number(n: Number) -> String {
    match n {
        Number::I64(v) => v.to_string(),
        Number::U64(v) => v.to_string(),
        Number::F64(v) => format!("{v}"),
    }
}

/// Inverse of [`serialize_map_entries`]: accepts both the object and the
/// `[key, value]`-pair-array encodings. Public for the same reason.
pub fn deserialize_map_entries<K, V, E>(value: Value) -> Result<Vec<(K, V)>, E>
where
    K: DeserializeOwned,
    V: DeserializeOwned,
    E: From<Error>,
{
    match value {
        Value::Object(pairs) => pairs
            .into_iter()
            .map(|(k, v)| Ok((from_key_str(&k)?, from_value(v)?)))
            .collect::<Result<Vec<_>, Error>>()
            .map_err(E::from),
        Value::Array(items) => items
            .into_iter()
            .map(|item| {
                let mut pair = expect_array(item, "map entry")?.into_iter();
                let k = pair
                    .next()
                    .ok_or_else(|| Error::invalid_type("map entry key"))?;
                let v = pair
                    .next()
                    .ok_or_else(|| Error::invalid_type("map entry value"))?;
                Ok((from_value(k)?, from_value(v)?))
            })
            .collect::<Result<Vec<_>, Error>>()
            .map_err(E::from),
        _ => Err(E::from(Error::invalid_type("map"))),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_entries(self.iter(), serializer)
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: DeserializeOwned + Ord,
    V: DeserializeOwned,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let pairs: Vec<(K, V)> = deserialize_map_entries(deserializer.take_value()?)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<K: Serialize + std::hash::Hash + Eq, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_entries(self.iter(), serializer)
    }
}

impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: DeserializeOwned + std::hash::Hash + Eq,
    V: DeserializeOwned,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let pairs: Vec<(K, V)> = deserialize_map_entries(deserializer.take_value()?)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut items = Vec::with_capacity(self.len());
        for item in self {
            items.push(to_value(item)?);
        }
        serializer.serialize_value(Value::Array(items))
    }
}

impl<'de, T: DeserializeOwned + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = expect_array(deserializer.take_value()?, "BTreeSet").map_err(D::Error::from)?;
        items
            .into_iter()
            .map(|item| from_value(item))
            .collect::<Result<BTreeSet<T>, Error>>()
            .map_err(D::Error::from)
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.take_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        let v = to_value(&42u64).unwrap();
        assert_eq!(v, Value::Number(Number::U64(42)));
        let back: u64 = from_value(v).unwrap();
        assert_eq!(back, 42);
    }

    #[test]
    fn nested_collections_round_trip() {
        let mut map = BTreeMap::new();
        map.insert(3u32, vec!["a".to_string(), "b".to_string()]);
        let v = to_value(&map).unwrap();
        // Integer map keys become object-key strings, as in serde_json.
        assert!(matches!(&v, Value::Object(pairs) if pairs[0].0 == "3"));
        let back: BTreeMap<u32, Vec<String>> = from_value(v).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(to_value(&Option::<u8>::None).unwrap(), Value::Null);
        let back: Option<u8> = from_value(Value::Null).unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn out_of_range_rejected() {
        let err = from_value::<u8>(Value::Number(Number::I64(300)));
        assert!(err.is_err());
    }
}
