//! Offline stand-in for the `proptest` crate.
//!
//! Reproduces the slice of proptest's API this workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_recursive` /
//! `boxed`, range and tuple strategies, `Just`, `any::<T>()`,
//! char-class string strategies (`"[ -~]{0,30}"`), the
//! `proptest::collection` / `proptest::array` helpers, and the `proptest!`
//! / `prop_oneof!` / `prop_assert*!` macros.
//!
//! Differences from real proptest: generation is driven by a fixed-seed
//! deterministic RNG (same inputs every run), and failing cases are
//! reported but **not shrunk**. That trade keeps the runner ~300 lines and
//! dependency-free while preserving the bug-finding power the test-suite
//! relies on.

pub mod strategy {
    use std::rc::Rc;

    use crate::runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `recurse` receives a boxed strategy
        /// for the previous depth level and returns the next level's
        /// strategy. Generation picks a uniformly random level, so leaves
        /// and deep trees both occur. `desired_size` / `expected_branch`
        /// are accepted for API compatibility and unused.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
            for _ in 0..depth {
                let prev = levels.last().unwrap().clone();
                levels.push(recurse(prev).boxed());
            }
            Union::new(levels).boxed()
        }

        /// Type-erases the strategy behind a cheaply clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe view of [`Strategy`], used by [`BoxedStrategy`].
    trait StrategyObj {
        type Value;
        fn generate_obj(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> StrategyObj for S {
        type Value = S::Value;
        fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A clonable, type-erased strategy handle.
    pub struct BoxedStrategy<T>(Rc<dyn StrategyObj<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_obj(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $ty
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (lo + v as i128) as $ty
                }
            }
        )*};
    }

    range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// `&str` patterns are char-class strategies: `"[ -~\\n]{0,120}"`
    /// generates strings of 0..=120 chars drawn from the class. Plain
    /// strings without a class generate themselves literally.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (chars, lo, hi) =
                parse_char_class(self).unwrap_or_else(|| (self.chars().collect(), 1, 1));
            if chars.is_empty() {
                return String::new();
            }
            let len = if hi > lo {
                lo + rng.below((hi - lo + 1) as u64) as usize
            } else {
                lo
            };
            (0..len)
                .map(|_| chars[rng.below(chars.len() as u64) as usize])
                .collect()
        }
    }

    /// Parses `[class]{lo,hi}` patterns; `None` for anything else.
    fn parse_char_class(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = find_unescaped(rest, ']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            let c = match class[i] {
                '\\' => {
                    i += 1;
                    match class.get(i)? {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        '0' => '\0',
                        other => *other,
                    }
                }
                c => c,
            };
            // Range `a-b` (a `-` that is neither first nor last in class).
            if class.get(i + 1) == Some(&'-') && i + 2 < class.len() {
                let end = match class[i + 2] {
                    '\\' => *class.get(i + 3)?,
                    c => c,
                };
                for v in (c as u32)..=(end as u32) {
                    chars.extend(char::from_u32(v));
                }
                i += 3;
            } else {
                chars.push(c);
                i += 1;
            }
        }
        let reps = &rest[close + 1..];
        let reps = reps.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match reps.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = reps.trim().parse().ok()?;
                (n, n)
            }
        };
        Some((chars, lo, hi))
    }

    fn find_unescaped(s: &str, target: char) -> Option<usize> {
        let chars: Vec<char> = s.chars().collect();
        let mut i = 0;
        let mut byte = 0;
        while i < chars.len() {
            if chars[i] == '\\' {
                byte += chars[i].len_utf8() + chars.get(i + 1).map_or(0, |c| c.len_utf8());
                i += 2;
                continue;
            }
            if chars[i] == target {
                return Some(byte);
            }
            byte += chars[i].len_utf8();
            i += 1;
        }
        None
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::runner::TestRng;
    use crate::strategy::Strategy;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value from raw bits.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Mostly ASCII with occasional wider code points.
            match rng.below(4) {
                0 => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap(),
                _ => char::from_u32(rng.below(0xD7FF) as u32).unwrap_or('\u{fffd}'),
            }
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    /// Strategy generating arbitrary values of `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T` (`proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use std::collections::BTreeSet;
    use std::ops::Range;

    use crate::runner::TestRng;
    use crate::strategy::Strategy;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length lies in `size` (half-open).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; duplicates collapse, so sets may
    /// be smaller than the drawn size (as in real proptest).
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates ordered sets with up to `size.end - 1` elements.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (`proptest::array`).
pub mod array {
    use crate::runner::TestRng;
    use crate::strategy::Strategy;

    /// Strategy producing `[S::Value; N]`.
    #[derive(Clone)]
    pub struct UniformArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    /// Sixteen independent draws from `element`.
    pub fn uniform16<S: Strategy>(element: S) -> UniformArrayStrategy<S, 16> {
        UniformArrayStrategy { element }
    }

    /// Thirty-two independent draws from `element`.
    pub fn uniform32<S: Strategy>(element: S) -> UniformArrayStrategy<S, 32> {
        UniformArrayStrategy { element }
    }
}

/// Deterministic case runner.
pub mod runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property observation (`prop_assert!` and friends).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Records a failed assertion.
        pub fn fail<M: Into<String>>(message: M) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Per-property result type used by generated test bodies.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic xorshift* generator driving all strategies.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds a generator for `(test, case)`.
        pub fn new(test_hash: u64, case: u32) -> TestRng {
            // splitmix64 of a case-distinguished seed; the constant keeps
            // state nonzero.
            let mut x = test_hash
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(u64::from(case).wrapping_mul(0xBF58476D1CE4E5B9))
                | 1;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
            TestRng {
                state: (x ^ (x >> 31)) | 1,
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }

    /// Executes `body` across `config.cases` deterministic cases, panicking
    /// on the first failure (no shrinking).
    pub fn run<F>(config: ProptestConfig, file: &str, line: u32, name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let mut hash = 0xcbf29ce484222325u64;
        for b in file.bytes().chain(name.bytes()) {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        for case in 0..config.cases {
            let mut rng = TestRng::new(hash, case);
            if let Err(err) = body(&mut rng) {
                panic!(
                    "proptest property `{name}` failed at {file}:{line} (case {case}/{}): {err}",
                    config.cases
                );
            }
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares deterministic property tests. Mirrors `proptest!`'s
/// `fn name(pat in strategy, ...) { body }` form, including an optional
/// leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::runner::run(
                    $config,
                    file!(),
                    line!(),
                    stringify!($name),
                    |__proptest_rng| {
                        $(let $pat =
                            $crate::strategy::Strategy::generate(&($strategy), __proptest_rng);)+
                        #[allow(unreachable_code)]
                        let __proptest_outcome: $crate::runner::TestCaseResult = (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                        __proptest_outcome
                    },
                );
            }
        )*
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Property assertion: fails the current case (without panicking the whole
/// process) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}` (both {:?})",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

/// Discards the current case when its inputs fall outside the property's
/// domain (counts as a pass in this shim).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1, 0);
        for _ in 0..200 {
            let v = Strategy::generate(&(-100i64..100), &mut rng);
            assert!((-100..100).contains(&v));
        }
    }

    #[test]
    fn char_class_parses_ranges_and_escapes() {
        let mut rng = TestRng::new(2, 0);
        for _ in 0..50 {
            let s = Strategy::generate(&"[ -~\\n\\t]{0,120}", &mut rng);
            assert!(s.len() <= 120);
            assert!(s
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::new(3, 0);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_patterns(a in 0u32..10, mut b in 0u32..10) {
            b += 1;
            prop_assert!(a < 10 && (1..=10).contains(&b));
        }
    }
}
