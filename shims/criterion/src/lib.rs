//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API the workspace benches use —
//! `Criterion`, benchmark groups, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — over a simple wall-clock measurement loop:
//! a short warm-up, then `sample_size` timed samples whose median is
//! reported on stdout. This keeps `cargo bench` runnable (and its relative
//! numbers meaningful) without the statistical machinery or plotting of
//! real criterion.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier, mirroring `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one parameterized benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display.
    pub fn new<P: fmt::Display>(function: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Creates an id from the parameter display alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Types usable as a benchmark label (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoLabel {
    /// Renders the label text.
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// Per-iteration timer handle passed to bench closures.
pub struct Bencher {
    /// Number of inner iterations per timed sample.
    iters: u64,
    /// Collected per-iteration durations (one per sample).
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, recording the mean per-iteration cost of a batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.samples.push(total / self.iters as u32);
    }
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        run_bench(name, self.sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<L: IntoLabel, F: FnMut(&mut Bencher)>(
        &mut self,
        id: L,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        run_bench(&label, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<L, I, F>(&mut self, id: L, input: &I, mut f: F) -> &mut Self
    where
        L: IntoLabel,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_bench(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Finishes the group (reporting is per-bench; nothing left to flush).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Calibration pass: find an iteration count that makes one sample take
    // roughly a millisecond, so per-iteration timings aren't pure clock
    // noise for fast routines.
    let mut bencher = Bencher {
        iters: 1,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let per_iter = bencher.samples.last().copied().unwrap_or(Duration::ZERO);
    let target = Duration::from_millis(1);
    let iters = if per_iter.is_zero() {
        1000
    } else {
        (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut bencher = Bencher {
        iters,
        samples: Vec::new(),
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let lo = bencher.samples.first().copied().unwrap_or_default();
    let hi = bencher.samples.last().copied().unwrap_or_default();
    println!("{label:<40} time: [{lo:>10.2?} {median:>10.2?} {hi:>10.2?}]");
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(2);
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn group_labels_compose() {
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
    }
}
