//! Offline stand-in for the `serde_json` crate.
//!
//! Reuses the in-tree serde shim's [`Value`] tree as its JSON document
//! model and adds the text layer: a JSON writer (compact and pretty) and a
//! recursive-descent JSON reader, plus the `to_value` / `from_value` /
//! `json!` entry points this workspace uses.

pub use serde::{Number, Value};

/// Errors share the serde shim's error type.
pub type Error = serde::Error;

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` into a generic [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value> {
    serde::to_value(value)
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: serde::DeserializeOwned>(value: Value) -> Result<T> {
    serde::from_value(value)
}

/// Serializes `value` as compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &to_value(value)?, None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &to_value(value)?, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: serde::DeserializeOwned>(text: &str) -> Result<T> {
    from_value(parse(text)?)
}

/// Builds a [`Value`] from a JSON-like literal. Supports `null`, nested
/// array / object literals, and arbitrary serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::json!($elem)),*])
    };
    ({ $($key:literal : $value:tt),* $(,)? }) => {
        $crate::Value::Object(vec![$((String::from($key), $crate::json!($value))),*])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::F64(v) if v.is_finite() => out.push_str(&format!("{v:?}")),
        // Non-finite floats have no JSON representation; serde_json emits
        // null for them in its lossy mode.
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::custom(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::custom("lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((first - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("bad surrogate pair"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| Error::custom("bad unicode escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole unescaped run in one step. The two
                    // delimiters are ASCII, so stopping on them can never
                    // split a multi-byte character, and validating the run
                    // once (instead of revalidating the remaining input per
                    // character) keeps parsing linear in the document size.
                    let start = self.pos;
                    while matches!(self.bytes.get(self.pos), Some(&b) if b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("bad unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("bad unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(v)));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::F64(v)))
            .map_err(|_| Error::custom(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_pretty_text() {
        let value = Value::Object(vec![
            ("name".to_string(), Value::String("a\"b\n".to_string())),
            (
                "items".to_string(),
                Value::Array(vec![
                    Value::Number(Number::I64(-3)),
                    Value::Bool(true),
                    Value::Null,
                ]),
            ),
        ]);
        let text = {
            let mut out = String::new();
            write_value(&mut out, &value, Some(2), 0);
            out
        };
        assert_eq!(parse(&text).unwrap(), value);
    }

    #[test]
    fn parses_floats_and_large_integers() {
        assert_eq!(parse("1.5").unwrap(), Value::Number(Number::F64(1.5)));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::Number(Number::U64(u64::MAX))
        );
    }

    #[test]
    fn json_macro_builds_values() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(12345u64), Value::Number(Number::U64(12345)));
        let obj = json!({"a": 1, "b": [true, null]});
        assert_eq!(obj["a"], Value::Number(Number::I64(1)));
        assert_eq!(obj["b"][1], Value::Null);
    }

    #[test]
    fn string_runs_preserve_escapes_and_utf8() {
        // The reader consumes unescaped runs chunk-wise; escapes and
        // multi-byte characters at chunk boundaries must survive intact.
        let text = r#""preé∀\\mid\"post∞""#;
        assert_eq!(
            parse(text).unwrap(),
            Value::String("preé∀\\mid\"post∞".to_string())
        );
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn large_documents_parse_in_linear_time() {
        // Checkpoint payloads reach several megabytes of mostly string
        // content. The old reader revalidated the remaining input once per
        // character (quadratic — minutes at this size); the run-based
        // reader finishes in milliseconds, so a plain parse doubles as the
        // regression guard.
        let big = "x".repeat(4 << 20);
        let doc = format!("{{\"blob\": \"{big}\", \"n\": 7}}");
        let v = parse(&doc).unwrap();
        assert_eq!(v["n"], Value::Number(Number::I64(7)));
        assert!(matches!(&v["blob"], Value::String(s) if s.len() == big.len()));
    }

    #[test]
    fn index_mut_replaces_fields() {
        let mut v = parse(r#"{"tag": 1}"#).unwrap();
        v["tag"] = json!(2u64);
        assert_eq!(v["tag"], Value::Number(Number::U64(2)));
    }
}
