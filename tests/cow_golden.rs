//! Byte-identity goldens for the structural-sharing state representation.
//!
//! The copy-on-write refactor (persistent maps, hash-consed values, chunked
//! logs) is a pure performance change: reports, rendered traces and
//! checkpoint files must be **byte-identical** to the deep-clone
//! representation at every worker count. The golden files under
//! `tests/golden/` were generated from the pre-refactor tree; these tests
//! assert the current tree still produces the same bytes at workers 1 and 4.
//!
//! Regenerate (only when an *intentional* output change lands) with:
//! `PS_UPDATE_GOLDENS=1 cargo test --test cow_golden`

use std::path::PathBuf;
use std::time::Duration;

use privacyscope::{Analyzer, AnalyzerOptions};
use symexec::engine::{Engine, EngineConfig, ParamBinding};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Compares `actual` against the named golden file, or rewrites the golden
/// when `PS_UPDATE_GOLDENS` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("PS_UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "golden {} unreadable ({e}); run with PS_UPDATE_GOLDENS=1",
            name
        )
    });
    assert_eq!(
        expected, actual,
        "output diverged from pre-refactor golden {name}"
    );
}

/// A fork-heavy fixture: independent branches over a secret buffer plus
/// array writes, so states carry non-trivial stores when they fork.
fn branches_fixture() -> (String, String) {
    let mut source = String::from("int entry(char *secrets, char *output) {\n    int acc = 0;\n");
    for i in 0..6 {
        source.push_str(&format!(
            "    if ((secrets[{i}] >> {}) & 1) acc += {i}; else acc -= {};\n",
            i % 7,
            i + 1
        ));
    }
    source.push_str("    output[0] = acc + secrets[0];\n    return 0;\n}\n");
    let edl = "enclave { trusted { public int entry([in] char *secrets, [out] char *output); }; };"
        .to_string();
    (source, edl)
}

fn report_json(source: &str, edl: &str, entry: &str, workers: usize, max_paths: usize) -> String {
    let options = AnalyzerOptions {
        workers,
        max_paths,
        ..AnalyzerOptions::default()
    };
    let analyzer = Analyzer::from_sources(source, edl, options).expect("fixture builds");
    let mut report = analyzer.analyze(entry).expect("fixture analyzes");
    // Wall-clock time is the one legitimately nondeterministic field.
    report.stats.time = Duration::ZERO;
    report.to_json()
}

#[test]
fn branches_report_bytes_match_golden_at_workers_1_and_4() {
    let (source, edl) = branches_fixture();
    let w1 = report_json(&source, &edl, "entry", 1, 4096);
    let w4 = report_json(&source, &edl, "entry", 4, 4096);
    assert_eq!(w1, w4, "report differs across worker counts");
    assert_golden("branches_report.json", &w1);
}

#[test]
fn recommender_report_bytes_match_golden_at_workers_1_and_4() {
    let module = mlcorpus::recommender::module();
    let w1 = report_json(module.source, module.edl, module.entry, 1, 32);
    let w4 = report_json(module.source, module.edl, module.entry, 4, 32);
    assert_eq!(w1, w4, "report differs across worker counts");
    assert_golden("recommender_report.json", &w1);
}

#[test]
fn checkpoint_bytes_match_golden_at_workers_1_and_4() {
    let (source, edl) = branches_fixture();
    let _ = edl;
    let unit = minic::parse(&source).expect("fixture parses");
    let run = |workers: usize| {
        let path = std::env::temp_dir().join(format!(
            "ps_cow_golden_{}_{workers}.snap",
            std::process::id()
        ));
        let config = EngineConfig {
            workers,
            checkpoint: Some(path.clone()),
            checkpoint_every: 1,
            ..EngineConfig::default()
        };
        Engine::new(&unit, config)
            .run(
                "entry",
                &[ParamBinding::SecretPointer, ParamBinding::OutPointer],
            )
            .expect("fixture explores");
        let bytes = std::fs::read_to_string(&path).expect("snapshot written");
        let _ = std::fs::remove_file(&path);
        bytes
    };
    let w1 = run(1);
    let w4 = run(4);
    assert_eq!(w1, w4, "checkpoint differs across worker counts");
    assert_golden("branches_checkpoint.snap", &w1);
}

#[test]
fn rendered_trace_matches_golden() {
    let source = "int f(char *s, char *out) {\n    int t = s[0] + 100;\n    if (t > 110) { out[0] = 1; return 1; }\n    out[0] = 0;\n    return 0;\n}\n";
    let unit = minic::parse(source).expect("fixture parses");
    let config = EngineConfig {
        workers: 1,
        record_trace: true,
        ..EngineConfig::default()
    };
    let exploration = Engine::new(&unit, config)
        .run(
            "f",
            &[ParamBinding::SecretPointer, ParamBinding::OutPointer],
        )
        .expect("fixture explores");
    let table = symexec::trace::render_table(&exploration.traces());
    assert_golden("trace_table.txt", &table);
}
