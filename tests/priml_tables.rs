//! Golden reproductions of the paper's Tables II and III: the PRIML
//! simulation traces of Examples 1 and 2.

use priml::analysis::{analyze, render_table2, render_table3, Violation};
use priml::examples::{EXAMPLE1, EXAMPLE2, EXAMPLE2_SECURE};
use taint::SourceId;

#[test]
fn table2_golden() {
    let program = priml::parse(EXAMPLE1).expect("example 1 parses");
    let outcome = analyze(&program);
    let table = render_table2(&outcome);

    // Row 1: h1 ↦ 2·s1, taint t1, no abort.
    assert!(
        table.contains("h1 := (2 * get_secret(secret)) | {h1 → 2 * s1} | {h1 → t1} | false"),
        "{table}"
    );
    // Row 2: h2 ↦ 3·s2 joins the store.
    assert!(table.contains("{h1 → 2 * s1, h2 → 3 * s2}"), "{table}");
    // Row 3: x ↦ 2·s1 + 3·s2 with taint ⊤.
    assert!(table.contains("x → 2 * s1 + 3 * s2"), "{table}");
    assert!(table.contains("x → ⊤"), "{table}");
    // Row 4: declassify(x) does NOT abort (⊤ is safe).
    assert!(table.contains("declassify(x)"), "{table}");
    // Row 5: declassify(h1) aborts (t1 is reversible).
    assert!(table.contains("declassify(h1)"), "{table}");
    let abort_rows: Vec<&str> = table.lines().filter(|l| l.ends_with("| true")).collect();
    assert_eq!(abort_rows.len(), 1, "{table}");
    assert!(abort_rows[0].starts_with("declassify(h1)"), "{table}");
}

#[test]
fn table2_violation_is_the_paper_one() {
    let program = priml::parse(EXAMPLE1).unwrap();
    let outcome = analyze(&program);
    assert_eq!(outcome.violations.len(), 1);
    let Violation::Explicit { value, source, .. } = &outcome.violations[0] else {
        panic!("expected explicit violation");
    };
    assert_eq!(value, "2 * s1");
    assert_eq!(*source, SourceId::new(1));
}

#[test]
fn table3_golden() {
    let program = priml::parse(EXAMPLE2).expect("example 2 parses");
    let outcome = analyze(&program);
    let table = render_table3(&outcome);

    // Row 1: h ↦ 2·s with π = True, τΔ = {h → t1}.
    assert!(
        table.contains(
            "h := (2 * get_secret(secret)) | {h → 2 * s1} | True | {h → t1} | {} | false"
        ),
        "{table}"
    );
    // Row 2: one branch of the conditional — π records the condition, τΔ
    // gains π → t1, hm records the first declassified value, no abort.
    assert!(table.contains("π → t1"), "{table}");
    assert!(table.contains("2 * s1 - 5 == 14"), "{table}");
    // Row 3: the opposite branch aborts — hm holds the other value.
    let abort_rows: Vec<&str> = table.lines().filter(|l| l.ends_with("| true")).collect();
    assert_eq!(abort_rows.len(), 1, "{table}");
    // both hashmap states appear: empty first, then populated
    assert!(table.contains("| {} |"), "{table}");
    assert!(
        table.contains("t1 → 0") || table.contains("t1 → 1"),
        "{table}"
    );
}

#[test]
fn table3_violation_is_the_paper_one() {
    let program = priml::parse(EXAMPLE2).unwrap();
    let outcome = analyze(&program);
    assert_eq!(outcome.violations.len(), 1);
    let Violation::Implicit { source, values } = &outcome.violations[0] else {
        panic!("expected implicit violation");
    };
    assert_eq!(*source, SourceId::new(1));
    let mut values = values.clone();
    values.sort();
    assert_eq!(values, ["0", "1"]);
}

#[test]
fn secure_variant_of_example2_has_clean_table() {
    let program = priml::parse(EXAMPLE2_SECURE).unwrap();
    let outcome = analyze(&program);
    assert!(outcome.is_secure());
    let table = render_table3(&outcome);
    assert!(!table.contains("| true"), "{table}");
}

#[test]
fn concrete_and_symbolic_semantics_agree_on_example1() {
    let program = priml::parse(EXAMPLE1).unwrap();
    let outcome = analyze(&program);
    // The analysis records Δ symbolically; evaluating the rendered store
    // under concrete secrets must match the concrete interpreter.
    for secrets in [[3u32, 4u32], [10, 20], [0, 0], [1000, 1]] {
        let concrete = priml::concrete::run(&program, &secrets).expect("runs");
        assert_eq!(
            concrete.declassified,
            vec![
                2u32.wrapping_mul(secrets[0])
                    .wrapping_add(3u32.wrapping_mul(secrets[1])),
                2u32.wrapping_mul(secrets[0]),
            ]
        );
    }
    assert_eq!(outcome.secrets, 2);
}
