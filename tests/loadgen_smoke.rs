//! Loadgen smoke: a seeded job mix dumped onto a single-worker pool with
//! a short fair-share slice must drain completely — every job reaches a
//! terminal state (no starvation) and none fails. Seed 4 draws a light
//! mix (two Recommenders and a Kmeans, no LinearRegression) so the test
//! stays fast in debug builds.

use std::process::Command;

#[test]
fn saturated_mix_drains_without_starvation_or_failures() {
    let output = Command::new(env!("CARGO_BIN_EXE_loadgen"))
        .args([
            "--jobs",
            "3",
            "--seed",
            "4",
            "--pool",
            "1",
            "--slice-ms",
            "100",
        ])
        .output()
        .expect("run loadgen");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "loadgen reported starvation or failures\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(
        stdout.contains("3 jobs") && stdout.contains("0 failure(s)"),
        "summary line should report a fully drained mix: {stdout}"
    );
    assert!(
        !stderr.contains("starvation"),
        "no job may be starved: {stderr}"
    );
}

#[test]
fn duplicate_options_are_rejected() {
    let output = Command::new(env!("CARGO_BIN_EXE_loadgen"))
        .args(["--jobs", "2", "--jobs", "4"])
        .output()
        .expect("run loadgen");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("duplicate `--jobs`"),
        "stderr should name the duplicated option: {stderr}"
    );
}
