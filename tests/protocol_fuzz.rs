//! Protocol fuzz: a seeded generator interleaves valid frames with
//! truncated JSON, binary garbage, oversized lines, and glued half-frames,
//! and drives the daemon's bounded reader + decoder over the mess. The
//! hardening contract under test:
//!
//! * no input panics the reader or the decoder — every defect is a typed
//!   error ([`FrameError`] from the reader, a message string from
//!   `decode`);
//! * an oversized line is consumed through its newline, so the reader
//!   *resynchronises*: every intact, in-bound valid frame in the stream
//!   still decodes, no matter what surrounds it.
//!
//! The generator is a plain LCG so a failure reproduces from its seed.

use std::io::BufReader;

use privacyscope::protocol::{self, ClientFrame, FrameError, FrameReader};

/// Deterministic linear congruential generator (Knuth MMIX constants).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

const LIMIT: usize = 2048;

/// One fuzz line and whether it must survive the reader + decoder.
enum Line {
    /// Intact frame under the size bound: must decode.
    Valid(ClientFrame),
    /// Must produce a typed error (or be skipped) — never a panic.
    Hostile(Vec<u8>),
}

fn valid_frame(lcg: &mut Lcg) -> ClientFrame {
    match lcg.below(5) {
        0 => ClientFrame::Ping,
        1 => ClientFrame::Status { job: lcg.next() },
        2 => ClientFrame::Fetch { job: lcg.next() },
        3 => ClientFrame::Recovery,
        _ => ClientFrame::Submit {
            source: "int f(char *s) { return s[0]; }".repeat(1 + lcg.below(4) as usize),
            edl: "enclave { trusted { public int f([in] char *s); }; };".into(),
            config: String::new(),
            function: "f".into(),
            max_paths: lcg.below(4096),
            loop_bound: lcg.below(8),
            workers: 1,
            deadline_ms: 0,
            progress: false,
        },
    }
}

fn hostile_line(lcg: &mut Lcg) -> Vec<u8> {
    match lcg.below(5) {
        // Truncated frame: valid JSON cut mid-way.
        0 => {
            let whole = protocol::encode(&valid_frame(lcg)).expect("encode");
            let cut = 1 + lcg.below(whole.len() as u64 - 1) as usize;
            let mut cut = cut.min(whole.len() - 1);
            while !whole.is_char_boundary(cut) {
                cut -= 1;
            }
            whole.as_bytes()[..cut].to_vec()
        }
        // Binary garbage, newline-free (the reader must not choke on
        // invalid UTF-8).
        1 => (0..1 + lcg.below(64))
            .map(|_| {
                let byte = (lcg.next() % 256) as u8;
                if byte == b'\n' {
                    0xFF
                } else {
                    byte
                }
            })
            .collect(),
        // Oversized line: beyond the reader's bound.
        2 => {
            let length = LIMIT + 1 + lcg.below(LIMIT as u64) as usize;
            vec![b'x'; length]
        }
        // Two half-frames glued together on one line (an interleaved
        // write from a broken client).
        3 => {
            let a = protocol::encode(&valid_frame(lcg)).expect("encode");
            let b = protocol::encode(&valid_frame(lcg)).expect("encode");
            let half = a.len() / 2;
            let mut half = half.max(1);
            while !a.is_char_boundary(half) {
                half -= 1;
            }
            format!("{}{b}", &a[..half]).into_bytes()
        }
        // Valid JSON that is not a ClientFrame.
        _ => br#"{"NotAFrame":{"x":1}}"#.to_vec(),
    }
}

/// Builds the byte stream and the expected count of decodable frames.
fn fuzz_stream(seed: u64, lines: usize) -> (Vec<u8>, usize) {
    let mut lcg = Lcg(seed);
    let mut stream = Vec::new();
    let mut expected_valid = 0usize;
    for _ in 0..lines {
        let line = if lcg.below(100) < 40 {
            Line::Valid(valid_frame(&mut lcg))
        } else {
            Line::Hostile(hostile_line(&mut lcg))
        };
        match line {
            Line::Valid(frame) => {
                let encoded = protocol::encode(&frame).expect("encode");
                assert!(
                    encoded.len() <= LIMIT,
                    "fixture bug: valid frame exceeds the bound"
                );
                expected_valid += 1;
                stream.extend_from_slice(encoded.as_bytes());
            }
            Line::Hostile(bytes) => stream.extend_from_slice(&bytes),
        }
        stream.push(b'\n');
    }
    (stream, expected_valid)
}

#[test]
fn hostile_streams_never_panic_and_valid_frames_resync() {
    for seed in [1u64, 7, 42, 20260808] {
        let (stream, expected_valid) = fuzz_stream(seed, 300);
        let mut frames = FrameReader::new(BufReader::with_capacity(97, stream.as_slice()), LIMIT);
        let mut decoded = 0usize;
        let mut typed_errors = 0usize;
        loop {
            match frames.next_line() {
                Ok(None) => break,
                Ok(Some(line)) => match protocol::decode::<ClientFrame>(&line) {
                    Ok(_) => decoded += 1,
                    Err(message) => {
                        assert!(
                            message.starts_with("malformed frame:"),
                            "seed {seed}: decode error must be typed: {message}"
                        );
                        typed_errors += 1;
                    }
                },
                Err(FrameError::Oversized { limit }) => {
                    assert_eq!(limit, LIMIT, "seed {seed}: bound echoed in the error");
                    typed_errors += 1;
                }
                Err(other) => {
                    panic!("seed {seed}: in-memory stream cannot time out or fail I/O: {other}")
                }
            }
        }
        assert_eq!(
            decoded, expected_valid,
            "seed {seed}: every intact valid frame must decode (resynchronisation)"
        );
        assert!(
            typed_errors > 0,
            "seed {seed}: fixture should have produced hostile lines"
        );
    }
}

/// A stream that ends mid-frame (crash / half-close while writing): the
/// reader delivers the partial tail once, the decoder rejects it with a
/// typed message, and the next read is a clean EOF — never a hang or a
/// panic.
#[test]
fn truncated_tail_is_a_typed_error_then_clean_eof() {
    let whole = protocol::encode(&ClientFrame::Status { job: 9 }).expect("encode");
    for cut in 1..whole.len() {
        if !whole.is_char_boundary(cut) {
            continue;
        }
        let mut stream = protocol::encode(&ClientFrame::Ping)
            .expect("encode")
            .into_bytes();
        stream.push(b'\n');
        stream.extend_from_slice(&whole.as_bytes()[..cut]);
        let mut frames = FrameReader::new(BufReader::new(stream.as_slice()), LIMIT);

        let first = frames.next_line().expect("intact line").expect("present");
        assert!(protocol::decode::<ClientFrame>(&first).is_ok());
        let tail = frames.next_line().expect("partial tail is delivered");
        let tail = tail.expect("tail bytes exist");
        assert!(
            protocol::decode::<ClientFrame>(&tail).is_err(),
            "cut at {cut}: a partial frame must not decode"
        );
        assert_eq!(frames.next_line().expect("clean EOF"), None);
    }
}

/// Oversized frames straddling buffer refills at every small capacity:
/// the reader must report the bound and resynchronise to the next line.
#[test]
fn oversized_lines_resync_at_any_buffer_capacity() {
    let mut stream = vec![b'y'; LIMIT * 3];
    stream.push(b'\n');
    stream.extend_from_slice(
        protocol::encode(&ClientFrame::Ping)
            .expect("encode")
            .as_bytes(),
    );
    stream.push(b'\n');
    for capacity in [1usize, 2, 3, 16, 64, 512, 8192] {
        let mut frames =
            FrameReader::new(BufReader::with_capacity(capacity, stream.as_slice()), LIMIT);
        assert!(
            matches!(
                frames.next_line(),
                Err(FrameError::Oversized { limit: LIMIT })
            ),
            "capacity {capacity}: oversized line must be bounded"
        );
        let next = frames
            .next_line()
            .expect("resynchronised")
            .expect("the valid line after the oversized one");
        assert_eq!(
            protocol::decode::<ClientFrame>(&next).expect("decodes"),
            ClientFrame::Ping,
            "capacity {capacity}: resynchronisation lost the next frame"
        );
        assert_eq!(frames.next_line().expect("clean EOF"), None);
    }
}
