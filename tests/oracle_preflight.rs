//! Cross-interpreter agreement pre-flight (the differential oracle's own
//! trust anchor): the symbolic engine, instantiated on a concrete input,
//! must observe exactly what `sgx-sim` observes — return value, `[out]`
//! writes, and the OCALL argument sequence.

use privacyscope::preflight::{check_agreement, Agreement, PreflightConfig};

#[test]
fn linear_regression_matches_on_its_single_path() {
    // LR is branch-free: one path, which the concrete input must select,
    // and every evaluable observable must agree. (The gradient-descent
    // accumulators exceed any practical value-size cap, so some model
    // slots are abstracted rather than compared.)
    let module = mlcorpus::linear_regression::module();
    let config = PreflightConfig {
        max_value_size: 192,
        ..PreflightConfig::default()
    };
    let agreement =
        check_agreement(module.source, module.edl, module.entry, &config).expect("pre-flight runs");
    match agreement {
        Agreement::Match { paths, .. } => assert_eq!(paths, 1, "LR is branch-free"),
        other => panic!("LR should match, got {other:?}"),
    }
}

#[test]
fn recommender_variants_match() {
    for module in [
        mlcorpus::recommender::module(),
        mlcorpus::recommender::fixed(),
    ] {
        let agreement = check_agreement(
            module.source,
            module.edl,
            module.entry,
            &PreflightConfig::default(),
        )
        .expect("pre-flight runs");
        assert!(
            matches!(agreement, Agreement::Match { .. }),
            "{} drifted: {agreement:?}",
            module.name
        );
    }
}

#[test]
fn kmeans_reports_dropped_path_honestly() {
    // Kmeans' path space outruns any small budget; the pre-flight must
    // say so (PathNotKept) — or match — but never report drift.
    let module = mlcorpus::kmeans::module();
    let config = PreflightConfig {
        max_paths: 8,
        max_value_size: 128,
        ..PreflightConfig::default()
    };
    let agreement =
        check_agreement(module.source, module.edl, module.entry, &config).expect("pre-flight runs");
    assert!(
        matches!(agreement, Agreement::PathNotKept | Agreement::Match { .. }),
        "kmeans drifted: {agreement:?}"
    );
}

#[test]
fn synthetic_modules_match_with_nothing_abstracted() {
    // The generator's integer-only modules stay under the raised value
    // cap: the concrete comparison must be complete (abstracted == 0) and
    // exact on every seed.
    for seed in 0..10u64 {
        let module = mlcorpus::synth::generate(seed);
        let config = PreflightConfig {
            seed,
            ..PreflightConfig::default()
        };
        let agreement = check_agreement(&module.source, &module.edl, module.entry, &config)
            .expect("pre-flight runs");
        match agreement {
            Agreement::Match { abstracted, .. } => {
                assert_eq!(abstracted, 0, "seed {seed}: comparison must be complete")
            }
            other => panic!("seed {seed} should match, got {other:?}"),
        }
    }
}

#[test]
fn ternary_selection_drift_stays_fixed() {
    // Regression: the engine models a symbolic-condition ternary as an
    // uninterpreted `ite(cond, then, else)` call. The concrete evaluator
    // originally had no `ite` case, so a fully-mapped value came back
    // unevaluable and this module reported drift
    // (`out[0]: engine <none> vs sim 0.0`). `ceval` now selects the taken
    // arm lazily, exactly as the simulator executes it.
    let source =
        "int f(double *xs, int p, double *out) { out[0] = p > 2 ? xs[0] : xs[1]; return 0; }";
    let edl = r#"
        enclave { trusted {
            public int f([in, count=4] double *xs, int p, [out, count=4] double *out);
        }; };
    "#;
    for seed in 0..8u64 {
        let config = PreflightConfig {
            seed,
            ..PreflightConfig::default()
        };
        let agreement = check_agreement(source, edl, "f", &config).expect("pre-flight runs");
        match agreement {
            Agreement::Match { abstracted, .. } => assert_eq!(
                abstracted, 0,
                "seed {seed}: the ite value must be compared, not skipped"
            ),
            other => panic!("seed {seed}: ternary drift regressed: {other:?}"),
        }
    }
}
