//! Listing 1 of the paper, end to end: the analyzer reproduces the Box 1
//! warning report and the Table IV symbolic exploration, and the enclave
//! runtime demonstrates that the flagged leaks are real.

use privacyscope::{Analyzer, AnalyzerOptions};
use sgx_sim::enclave::{EcallArg, Enclave};
use sgx_sim::interp::{Value, Word};

const LISTING1: &str = r#"int enclave_process_data(char *secrets, char *output)
{
    int temporary = secrets[0] + 100;
    output[0] = temporary + 1;
    if (secrets[1] == 0)
        return 0;
    else
        return 1;
}
"#;

const LISTING1_EDL: &str = r#"
enclave {
    trusted {
        public int enclave_process_data([in, count=2] char *secrets,
                                        [out, count=1] char *output);
    };
};
"#;

fn analyzer() -> Analyzer {
    Analyzer::from_sources(LISTING1, LISTING1_EDL, AnalyzerOptions::default())
        .expect("listing 1 builds")
}

#[test]
fn box1_report_contents() {
    let report = analyzer()
        .analyze("enclave_process_data")
        .expect("analyzes");
    // Box 1: secrets[0] leaks explicitly through output[0]…
    let explicit = report.explicit_findings().next().expect("explicit finding");
    assert_eq!(explicit.channel, "output[0]");
    assert_eq!(explicit.secret, "secrets[0]");
    assert_eq!(
        explicit.value.as_deref(),
        Some("($secrets[0] + 101)"),
        "the report should show the invertible expression"
    );
    // …and secrets[1] leaks implicitly through the return value.
    let implicit = report.implicit_findings().next().expect("implicit finding");
    assert_eq!(implicit.channel, "return value");
    assert_eq!(implicit.secret, "secrets[1]");
    let values: Vec<&str> = implicit
        .observations
        .iter()
        .map(|o| o.value.as_str())
        .collect();
    assert_eq!(values, ["0", "1"]);
    assert_eq!(report.findings.len(), 2);

    let rendered = report.to_string();
    assert!(rendered.contains("[EXPLICIT] output[0] reveals secret `secrets[0]`"));
    assert!(rendered.contains("[IMPLICIT] return value reveals secret `secrets[1]`"));
}

#[test]
fn table4_exploration_states() {
    let table = analyzer()
        .trace_table("enclave_process_data")
        .expect("traces");
    // state A/B: the two assignments with element regions of the secrets
    // SymRegion (reg₀ in the paper)
    assert!(
        table.contains("int temporary = secrets[0] + 100;"),
        "{table}"
    );
    assert!(table.contains("SymRegion(secrets)[0]"), "{table}");
    assert!(table.contains("output[0] = temporary + 1;"), "{table}");
    // states D/E: the fork over secrets[1] with opposite π
    assert!(table.contains("($secrets[1] == 0)"), "{table}");
    assert!(table.contains("!(($secrets[1] == 0))"), "{table}");
    // both return statements appear exactly once
    assert_eq!(table.matches("return 0;").count(), 1, "{table}");
    assert_eq!(table.matches("return 1;").count(), 1, "{table}");
}

#[test]
fn runtime_confirms_the_explicit_leak() {
    // The analyzer says: observable value = secrets[0] + 101. Run the
    // enclave and invert the computation like the attacker would.
    let enclave = Enclave::load(LISTING1, LISTING1_EDL).expect("loads");
    for secret in [-7i64, 0, 42, 101] {
        let result = enclave
            .ecall(
                "enclave_process_data",
                &[
                    EcallArg::In(vec![Word::Int(secret), Word::Int(3)]),
                    EcallArg::Out(1),
                ],
            )
            .expect("runs");
        let Word::Int(observed) = result.outs["output"][0] else {
            panic!("expected an int cell");
        };
        assert_eq!(
            observed - 101,
            secret,
            "inverting the leak recovers the secret"
        );
    }
}

#[test]
fn runtime_confirms_the_implicit_leak() {
    let enclave = Enclave::load(LISTING1, LISTING1_EDL).expect("loads");
    let run = |s1: i64| {
        enclave
            .ecall(
                "enclave_process_data",
                &[
                    EcallArg::In(vec![Word::Int(9), Word::Int(s1)]),
                    EcallArg::Out(1),
                ],
            )
            .expect("runs")
            .ret
    };
    // observing the return value decides `secrets[1] == 0`
    assert_eq!(run(0), Some(Value::Int(0)));
    assert_eq!(run(1), Some(Value::Int(1)));
    assert_eq!(run(-5), Some(Value::Int(1)));
}

#[test]
fn stats_are_sensible() {
    let report = analyzer()
        .analyze("enclave_process_data")
        .expect("analyzes");
    assert_eq!(report.stats.paths, 2);
    assert_eq!(report.stats.forks, 1);
    assert!(!report.stats.exhausted);
    assert_eq!(report.stats.loc, 9);
    // JSON export round-trips
    let json = report.to_json();
    assert!(json.contains("\"function\": \"enclave_process_data\""));
}
