//! The §VIII-A timing-channel extension: "PrivacyScope can be extended to
//! simulate the execution time for program paths and detect if execution
//! time depends on secret." This repository implements that extension —
//! per-path simulated cost (interpreted statements) compared across paths
//! forked on a single secret.

use privacyscope::{Analyzer, AnalyzerOptions, FindingKind};

const UNBALANCED: &str = r#"
int check_pin(char *secret, char *output) {
    int work = 0;
    if (secret[0] == 7) {
        for (int i = 0; i < 50; i++) {
            work = work + i;
        }
        output[0] = 1;
    } else {
        output[0] = 1;
    }
    return work - work;
}
"#;

const BALANCED: &str = r#"
int check_pin(char *secret, char *output) {
    int work = 0;
    if (secret[0] == 7) {
        for (int i = 0; i < 50; i++) {
            work = work + i;
        }
        output[0] = 1;
    } else {
        for (int i = 0; i < 50; i++) {
            work = work + 2 * i;
        }
        output[0] = 1;
    }
    return work - work;
}
"#;

const EDL: &str = r#"
enclave { trusted {
    public int check_pin([in] char *secret, [out] char *output);
}; };
"#;

fn analyze(source: &str, timing: bool) -> privacyscope::Report {
    let options = AnalyzerOptions {
        check_timing: timing,
        ..AnalyzerOptions::default()
    };
    Analyzer::from_sources(source, EDL, options)
        .expect("builds")
        .analyze("check_pin")
        .expect("analyzes")
}

#[test]
fn unbalanced_branch_is_a_timing_channel() {
    let report = analyze(UNBALANCED, true);
    let timing: Vec<_> = report.timing_findings().collect();
    assert_eq!(timing.len(), 1, "{report}");
    let finding = timing[0];
    assert_eq!(finding.kind, FindingKind::Timing);
    assert_eq!(finding.channel, "execution time");
    assert_eq!(finding.secret, "secret[0]");
    assert_eq!(finding.observations.len(), 2);
    // the loop side costs visibly more simulated steps
    let steps: Vec<usize> = finding
        .observations
        .iter()
        .map(|o| {
            o.value
                .split_whitespace()
                .next()
                .and_then(|s| s.parse().ok())
                .expect("step count")
        })
        .collect();
    assert!(steps[1] - steps[0] >= 50, "{steps:?}");
}

#[test]
fn balanced_branches_do_not_raise_timing_findings() {
    // Both sides run a 50-iteration loop: cost is (near-)identical. A small
    // tolerance is not modeled — the counts must match exactly here because
    // the branches are statement-for-statement symmetric.
    let report = analyze(BALANCED, true);
    assert_eq!(report.timing_findings().count(), 0, "{report}");
}

#[test]
fn timing_detection_is_off_by_default() {
    let report = analyze(UNBALANCED, false);
    assert_eq!(report.timing_findings().count(), 0, "{report}");
    // …and the function is otherwise clean: outputs/returns don't leak.
    assert!(report.is_secure(), "{report}");
}

#[test]
fn timing_findings_serialize() {
    let report = analyze(UNBALANCED, true);
    let json = report.to_json();
    assert!(json.contains("\"Timing\""), "{json}");
    let back: privacyscope::Report = serde_json::from_str(&json).expect("round-trips");
    // durations serialize at microsecond granularity, so compare findings
    assert_eq!(report.findings, back.findings);
    assert_eq!(report.stats.paths, back.stats.paths);
}
