//! The exploration profiler's governing guarantees.
//!
//! 1. Profiles are **worker-count-invariant**: per-task counters are
//!    absorbed in canonical wave order, so every worker count produces
//!    byte-identical hotspot tables and JSON.
//! 2. Profiling is **observational**: report JSON and Display never carry
//!    the profile, so enabling `--profile`/`--profile-out` cannot change
//!    report bytes.
//! 3. Checkpoint/resume **preserves** the profile: a resumed run ends with
//!    the same attribution as an uninterrupted one.
//! 4. Hotspot sanity: the vulnerable recommender's secret-dependent
//!    branches dominate the secret/fork columns.
//! 5. In-process `AnalysisService::stats()` snapshots are well-formed
//!    mid-load and after completion (the wire-level twin lives in
//!    `crates/core/tests/daemon_stats.rs`).

use std::path::PathBuf;
use std::time::Duration;

use privacyscope::service::{AnalysisService, JobSpec, ServiceConfig};
use privacyscope::{Analyzer, AnalyzerOptions, Report};

fn analyze(module: &mlcorpus::Module, workers: usize, max_paths: usize) -> Report {
    let analyzer = Analyzer::from_sources(
        module.source,
        module.edl,
        AnalyzerOptions {
            workers,
            max_paths,
            loop_bound: 2,
            ..AnalyzerOptions::default()
        },
    )
    .expect("corpus module configures");
    analyzer
        .analyze(module.entry)
        .expect("corpus module analyzes")
}

fn corpus_with_vulnerable() -> Vec<mlcorpus::Module> {
    let mut modules = mlcorpus::modules();
    modules.push(mlcorpus::recommender_vulnerable());
    modules
}

#[test]
fn profile_is_byte_identical_across_worker_counts() {
    for module in corpus_with_vulnerable() {
        let sequential = analyze(&module, 1, 32);
        let parallel = analyze(&module, 4, 32);
        assert_eq!(
            sequential.profile, parallel.profile,
            "{}: profile diverged between workers 1 and 4",
            module.name
        );
        assert_eq!(
            sequential.profile.render_table(module.entry),
            parallel.profile.render_table(module.entry),
            "{}: rendered hotspot table diverged",
            module.name
        );
        assert_eq!(
            sequential.profile.to_json(module.entry),
            parallel.profile.to_json(module.entry),
            "{}: profile JSON diverged",
            module.name
        );
        assert!(
            !sequential.profile.is_empty(),
            "{}: exploration recorded no profile rows",
            module.name
        );
    }
}

#[test]
fn report_json_and_display_never_carry_the_profile() {
    let module = mlcorpus::recommender_vulnerable();
    let report = analyze(&module, 1, 32);
    assert!(
        !report.profile.is_empty(),
        "the in-memory report must carry a resolved profile"
    );
    // Emission is opt-in at the CLI; the serialized report and the rendered
    // Box-1 view must stay byte-identical whether anyone reads the profile.
    let json = report.to_json();
    assert!(
        !json.contains("\"profile\""),
        "report JSON leaked the profile field"
    );
    assert!(
        !report.to_string().contains("exploration profile"),
        "report Display leaked the hotspot table"
    );
}

fn checkpoint_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ps_profile_{tag}_{}.ckpt", std::process::id()))
}

#[test]
fn checkpoint_resume_preserves_the_profile() {
    let module = mlcorpus::recommender_vulnerable();
    for workers in [1usize, 4] {
        let path = checkpoint_path(&format!("resume_w{workers}"));
        let options = AnalyzerOptions {
            workers,
            max_paths: 32,
            loop_bound: 2,
            ..AnalyzerOptions::default()
        };
        // `checkpoint_every: 1` leaves the last wave boundary's snapshot on
        // disk, with the partial profile spooled alongside the frontier.
        let full = Analyzer::from_sources(
            module.source,
            module.edl,
            AnalyzerOptions {
                checkpoint: Some(path.clone()),
                checkpoint_every: 1,
                ..options.clone()
            },
        )
        .expect("checkpointing analyzer configures")
        .analyze(module.entry)
        .expect("checkpointing run analyzes");
        let snapshot = symexec::Snapshot::load(&path).expect("snapshot loads");
        assert!(snapshot.wave() > 0, "snapshot is from a mid-run boundary");
        assert!(
            snapshot.profile_steps() > 0,
            "the snapshot must carry the partial profile"
        );

        // The resumed run replays only the remaining waves, yet must end
        // with the same attribution as the run that never stopped.
        let resumed = Analyzer::from_sources(
            module.source,
            module.edl,
            AnalyzerOptions {
                resume: Some(path.clone()),
                ..options.clone()
            },
        )
        .expect("resumed analyzer configures")
        .analyze(module.entry)
        .expect("resumed run analyzes");
        assert_eq!(
            resumed.profile, full.profile,
            "workers={workers}: resumed profile diverged from the uninterrupted run"
        );
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn secret_branches_attribute_to_the_injected_leak_lines() {
    let module = mlcorpus::recommender_vulnerable();
    let profile = analyze(&module, 1, 32).profile;
    let hottest_secret = profile
        .hottest_by(|c| c.secret_branches)
        .expect("profile has rows");
    assert!(
        hottest_secret.counters.secret_branches > 0,
        "the vulnerable recommender must evaluate secret-tainted branches"
    );
    assert!(
        hottest_secret.text.contains("ratings[0]"),
        "hottest secret-branch line is `{}`, expected the injected \
         ratings[0] branch",
        hottest_secret.text
    );
    let hottest_forks = profile.hottest_by(|c| c.forks).expect("profile has rows");
    assert!(
        hottest_forks.counters.forks > 0 && hottest_forks.text.contains("ratings[0]"),
        "fork hotspot is `{}` with {} forks, expected the injected \
         ratings[0] branch to dominate",
        hottest_forks.text,
        hottest_forks.counters.forks
    );
}

fn service_spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ps_profile_svc_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn job_spec(module: &mlcorpus::Module, max_paths: usize) -> JobSpec {
    JobSpec {
        source: module.source.to_string(),
        edl: module.edl.to_string(),
        function: Some(module.entry.to_string()),
        max_paths,
        loop_bound: 2,
        workers: 1,
        ..JobSpec::default()
    }
}

/// Structural invariants every snapshot must satisfy, loaded or idle.
fn assert_well_formed(stats: &privacyscope::ServiceStats, context: &str) {
    assert!(
        stats.busy <= stats.pool,
        "{context}: busy {} exceeds pool {}",
        stats.busy,
        stats.pool
    );
    let mut previous = None;
    for job in &stats.jobs {
        assert!(
            previous.is_none_or(|p| p < job.id),
            "{context}: job ids not strictly increasing"
        );
        previous = Some(job.id);
        assert!(
            ["queued", "running", "suspended", "done", "failed"].contains(&job.state.as_str()),
            "{context}: unknown job state `{}`",
            job.state
        );
    }
}

#[test]
fn service_stats_are_well_formed_mid_load_and_after_completion() {
    let service = AnalysisService::start(ServiceConfig {
        pool: 1,
        slice: Some(Duration::from_millis(100)),
        spool: service_spool("midload"),
        ..ServiceConfig::default()
    })
    .expect("service starts");

    let modules = corpus_with_vulnerable();
    let mut ids = Vec::new();
    for module in &modules {
        ids.push(service.submit(job_spec(module, 24)).expect("job admitted"));
    }
    // Poll while the pool is saturated: with 1 worker and several queued
    // jobs every snapshot mid-run must stay internally consistent.
    for _ in 0..20 {
        let stats = service.stats();
        assert_well_formed(&stats, "mid-load");
        assert_eq!(stats.pool, 1, "pool size is a configuration constant");
        std::thread::sleep(Duration::from_millis(10));
    }

    for id in &ids {
        let outcome = service.wait(*id).expect("job reaches a terminal state");
        assert!(
            outcome.error.is_none(),
            "job {id} failed: {:?}",
            outcome.error
        );
    }
    let done = service.stats();
    assert_well_formed(&done, "after completion");
    assert_eq!(done.queue_depth, 0, "queue must drain");
    assert_eq!(done.busy, 0, "no job is running after all waits");
    for job in &done.jobs {
        assert_eq!(job.state, "done", "job {} must be done", job.id);
        assert!(
            job.steps > 0,
            "job {}: completed jobs must report their summed profile steps",
            job.id
        );
    }
}
