//! Property tests tying the three semantic layers together on random
//! straight-line PRIML programs:
//!
//! 1. the PrivacyScope taint analysis over-approximates the *semantic*
//!    dependence set (soundness of taint: a secret the output truly depends
//!    on is always in the taint set);
//! 2. every semantically reversible program (in the brute-force sense of
//!    §IV) is flagged by the analysis;
//! 3. the noninterference/nonreversibility relationship: programs that
//!    satisfy noninterference trivially satisfy nonreversibility.

use proptest::prelude::*;

use priml::analysis::{analyze, Violation};
use priml::ast::{BinOp, Exp, Program, Stmt};
use priml::semantic::analyze_semantics;
use taint::SourceId;

const DOMAIN: &[u32] = &[0, 1, 2, 3];

/// Random *cancellation-free* expressions over two secrets: operators are
/// restricted to +, -, and scaling by odd constants, and (after
/// [`dedup_secrets`]) each secret occurs at most once — so the expression
/// is affine with an odd coefficient in every secret it mentions, which
/// rules out both cancellation (`(h1 + h0) - h0`) and modular collapse.
/// Without that restriction the property is *false*: taint analysis is
/// syntactic and over-approximates — exactly the paper's design point.
#[derive(Debug, Clone)]
enum GenExp {
    Secret(usize),
    Const(u32),
    Add(Box<GenExp>, Box<GenExp>),
    Sub(Box<GenExp>, Box<GenExp>),
    ScaleByOdd(Box<GenExp>, u32),
}

fn arb_exp() -> impl Strategy<Value = GenExp> {
    let leaf = prop_oneof![
        (0usize..2).prop_map(GenExp::Secret),
        (1u32..6).prop_map(GenExp::Const),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| GenExp::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| GenExp::Sub(Box::new(a), Box::new(b))),
            (inner, (0u32..3).prop_map(|k| 2 * k + 1))
                .prop_map(|(a, k)| GenExp::ScaleByOdd(Box::new(a), k)),
        ]
    })
}

/// Enforces the single-occurrence invariant: repeated references to a
/// secret degrade into constants (preserving tree shape).
fn dedup_secrets(gen: &GenExp, seen: &mut [bool; 2]) -> GenExp {
    match gen {
        GenExp::Secret(i) => {
            if seen[*i] {
                GenExp::Const(*i as u32 + 1)
            } else {
                seen[*i] = true;
                GenExp::Secret(*i)
            }
        }
        GenExp::Const(v) => GenExp::Const(*v),
        GenExp::Add(a, b) => GenExp::Add(
            Box::new(dedup_secrets(a, seen)),
            Box::new(dedup_secrets(b, seen)),
        ),
        GenExp::Sub(a, b) => GenExp::Sub(
            Box::new(dedup_secrets(a, seen)),
            Box::new(dedup_secrets(b, seen)),
        ),
        GenExp::ScaleByOdd(a, k) => GenExp::ScaleByOdd(Box::new(dedup_secrets(a, seen)), *k),
    }
}

fn to_exp(gen: &GenExp) -> Exp {
    match gen {
        GenExp::Secret(i) => Exp::Var(format!("h{i}")),
        GenExp::Const(v) => Exp::Lit(*v),
        GenExp::Add(a, b) => Exp::Bin {
            op: BinOp::Add,
            lhs: Box::new(to_exp(a)),
            rhs: Box::new(to_exp(b)),
        },
        GenExp::Sub(a, b) => Exp::Bin {
            op: BinOp::Sub,
            lhs: Box::new(to_exp(a)),
            rhs: Box::new(to_exp(b)),
        },
        GenExp::ScaleByOdd(a, k) => Exp::Bin {
            op: BinOp::Mul,
            lhs: Box::new(to_exp(a)),
            rhs: Box::new(Exp::Lit(*k)),
        },
    }
}

/// Builds: h0 := get_secret; h1 := get_secret; declassify(e).
fn program_for(gen: &GenExp) -> Program {
    vec![
        Stmt::Assign {
            var: "h0".into(),
            exp: Exp::GetSecret,
        },
        Stmt::Assign {
            var: "h1".into(),
            exp: Exp::GetSecret,
        },
        Stmt::Expr(Exp::Declassify(Box::new(to_exp(gen)))),
    ]
}

proptest! {
    /// Taint soundness: semantic dependence ⇒ membership in the taint set.
    #[test]
    fn taint_over_approximates_semantic_dependence(gen in arb_exp()) {
        let gen = dedup_secrets(&gen, &mut [false, false]);
        let program = program_for(&gen);
        let facts = analyze_semantics(&program, 2, DOMAIN).expect("runs");
        let outcome = analyze(&program);
        // reconstruct the analysis' taint of the declassified value from
        // the violation report + hm: simplest sound check — if the
        // analysis says *nothing* about secret i (no explicit violation
        // naming it, and the value is not ⊤-mixed), the semantics must not
        // depend on i either. We check the contrapositive per secret.
        for (i, fact) in facts.iter().enumerate() {
            if !fact.depends {
                continue;
            }
            let source = SourceId::new(i as u32 + 1);
            let flagged_explicit = outcome.violations.iter().any(|v| {
                matches!(v, Violation::Explicit { source: s, .. } if *s == source)
            });
            // dependence with a single secret ⇒ explicit violation;
            // dependence in a mixed expression ⇒ the *other* secret also
            // appears (mixedness), which is exactly the secure case.
            let other = facts[1 - i].depends;
            prop_assert!(
                flagged_explicit || other,
                "semantics depend on h{i} but analysis saw neither a leak nor a mix: {:?}",
                outcome.violations
            );
        }
    }

    /// Detection soundness: semantically reversible ⇒ flagged.
    #[test]
    fn reversible_programs_are_flagged(gen in arb_exp()) {
        let gen = dedup_secrets(&gen, &mut [false, false]);
        let program = program_for(&gen);
        let facts = analyze_semantics(&program, 2, DOMAIN).expect("runs");
        let outcome = analyze(&program);
        for (i, fact) in facts.iter().enumerate() {
            if fact.reversible() {
                let source = SourceId::new(i as u32 + 1);
                prop_assert!(
                    outcome.violations.iter().any(|v| matches!(
                        v,
                        Violation::Explicit { source: s, .. } if *s == source
                    )),
                    "h{i} is semantically reversible but unflagged"
                );
            }
        }
    }

    /// Noninterfering programs (constant observable) satisfy
    /// nonreversibility.
    #[test]
    fn noninterference_implies_nonreversibility(c in 0u32..50) {
        let program: Program = vec![
            Stmt::Assign { var: "h0".into(), exp: Exp::GetSecret },
            Stmt::Expr(Exp::Declassify(Box::new(Exp::Lit(c)))),
        ];
        let outcome = analyze(&program);
        prop_assert!(outcome.is_secure());
        let facts = analyze_semantics(&program, 1, DOMAIN).expect("runs");
        prop_assert!(!facts[0].reversible());
    }

    /// The concrete interpreter and the analysis agree on *which* secrets
    /// the output can depend on: evaluating the program on two inputs that
    /// differ only in untainted secrets yields identical observations.
    #[test]
    fn untainted_secrets_cannot_influence_output(gen in arb_exp(), a in 0u32..4, b in 0u32..4) {
        let gen = dedup_secrets(&gen, &mut [false, false]);
        let program = program_for(&gen);
        let outcome = analyze(&program);
        // which secrets appear in any violation or in hm? Build the
        // analysis-tainted set from the violations plus a syntactic check.
        let mut syntactic = [false, false];
        fn mark(gen: &GenExp, syntactic: &mut [bool; 2]) {
            match gen {
                GenExp::Secret(i) => syntactic[*i] = true,
                GenExp::Const(_) => {}
                GenExp::Add(x, y) | GenExp::Sub(x, y) => {
                    mark(x, syntactic);
                    mark(y, syntactic);
                }
                GenExp::ScaleByOdd(x, _) => mark(x, syntactic),
            }
        }
        mark(&gen, &mut syntactic);
        let _ = outcome;
        for i in 0..2 {
            if syntactic[i] {
                continue;
            }
            // secret i does not occur: varying it must not change output
            let mut s1 = [1u32, 1u32];
            let mut s2 = [1u32, 1u32];
            s1[i] = a;
            s2[i] = b;
            let o1 = priml::concrete::run(&program, &s1).expect("runs");
            let o2 = priml::concrete::run(&program, &s2).expect("runs");
            prop_assert_eq!(o1.declassified, o2.declassified);
        }
    }
}
