//! Shrinker properties, sampled across blinded oracle configurations:
//! every minimized reproducer must (1) still parse, (2) still reproduce
//! the exact disagreement under the shrinker's own acceptance predicate,
//! (3) never be larger than the original, and (4) be deterministic —
//! shrinking the same module twice yields identical output.

use proptest::prelude::*;

use privacyscope::oracle::{check_module, OracleConfig};
use privacyscope::shrink::{reproduces, shrink};

/// (seed, blind-explicit?) pairs whose generated module plants a leak of
/// the blinded kind, so the blinded analyzer is guaranteed to miss it.
fn blinded_cases() -> impl Strategy<Value = (u64, bool)> {
    prop_oneof![
        Just((4u64, false)), // implicit-ocall only
        Just((9u64, false)), // implicit-ocall (plus explicit-return)
        Just((6u64, false)), // implicit-return (plus explicit-out)
        Just((2u64, true)),  // explicit-ocall
        Just((3u64, true)),  // explicit-out + explicit-return
        Just((8u64, true)),  // explicit-return
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn shrunk_reproducers_stay_faithful((seed, blind_explicit) in blinded_cases()) {
        let module = mlcorpus::synth::generate(seed);
        let config = OracleConfig {
            max_paths: 64,
            check_explicit: !blind_explicit,
            check_implicit: blind_explicit,
            ..OracleConfig::default()
        };
        let verdict = check_module(&module, &config);
        let target = verdict
            .missed_leaks()
            .next()
            .expect("a blinded planted leak must surface as a missed leak");

        let outcome = shrink(&module, target, &config);

        // Validity: the minimized source is still a well-formed module.
        prop_assert!(
            minic::parse(&outcome.source).is_ok(),
            "seed {seed}: shrunk source no longer parses:\n{}",
            outcome.source
        );
        // Faithfulness: it still exhibits the same disagreement.
        prop_assert!(
            reproduces(&outcome.source, &module, target, &config),
            "seed {seed}: shrunk source no longer reproduces:\n{}",
            outcome.source
        );
        // Monotonicity: shrinking never grows the module.
        prop_assert!(
            outcome.loc <= outcome.original_loc,
            "seed {seed}: {} LoC > original {}",
            outcome.loc,
            outcome.original_loc
        );
        // Determinism: the search is a fixed-order greedy fixpoint.
        let again = shrink(&module, target, &config);
        prop_assert_eq!(outcome, again, "seed {seed}: shrink is nondeterministic");
    }
}
