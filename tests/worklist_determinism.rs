//! Determinism and accounting guarantees of the worklist engine.
//!
//! 1. Parallel exploration is **byte-identical** to sequential: running any
//!    ML-corpus module with `workers = 4` yields exactly the `Exploration`
//!    that `workers = 1` (the legacy engine) produces — same path order,
//!    same symbol/source numbering, same event log, same counters.
//! 2. The harvest accounts for every finished path: across path budgets and
//!    worker counts, `completed + dropped_paths` is the program's true path
//!    count, `completed` equals the collected paths, and — since the fix to
//!    the declassify-event asymmetry — the global event log carries one
//!    return observation per finished path, dropped or kept.

use proptest::prelude::*;
use symexec::engine::{Engine, EngineConfig, Exploration, ParamBinding};
use symexec::state::Channel;
use symexec::Degradation;

/// Mirrors `Analyzer::bindings` for a default (no-override) configuration.
fn bindings_from_edl(edl_text: &str, entry: &str) -> Vec<ParamBinding> {
    let edl_file = edl::parse_edl(edl_text).expect("corpus EDL parses");
    let proto = edl_file.ecall(entry).expect("entry is a declared ECALL");
    proto
        .params
        .iter()
        .map(|param| {
            if param.is_pointer() {
                match (param.attributes.is_in(), param.attributes.is_out()) {
                    (true, true) => ParamBinding::InOutPointer,
                    (true, false) => ParamBinding::SecretPointer,
                    (false, true) => ParamBinding::OutPointer,
                    (false, false) => ParamBinding::Pointer,
                }
            } else {
                ParamBinding::Scalar
            }
        })
        .collect()
}

/// Explores one corpus module with the analyzer's sink/source wiring.
fn explore_module(module: &mlcorpus::Module, workers: usize) -> Exploration {
    let unit = minic::parse(module.source).expect("corpus source parses");
    let edl_file = edl::parse_edl(module.edl).expect("corpus EDL parses");
    let mut config = EngineConfig {
        max_paths: 32,
        workers,
        ..EngineConfig::default()
    };
    for sink in edl_file.ocall_names() {
        config.sink_functions.insert(sink);
    }
    for source in privacyscope::analyzer::DEFAULT_DECRYPT_FUNCTIONS {
        config.source_functions.insert(source.to_string());
    }
    let bindings = bindings_from_edl(module.edl, module.entry);
    Engine::new(&unit, config)
        .run(module.entry, &bindings)
        .expect("corpus module explores")
}

#[test]
fn ml_corpus_explorations_are_identical_at_any_worker_count() {
    for module in mlcorpus::modules() {
        let sequential = explore_module(&module, 1);
        let parallel = explore_module(&module, 4);
        assert_eq!(
            sequential, parallel,
            "{}: workers=4 diverged from workers=1",
            module.name
        );
        assert!(
            !sequential.paths.is_empty(),
            "{}: exploration collected no paths",
            module.name
        );
    }
}

/// Four independent branches on secret bits: exactly 16 feasible paths.
const BRANCHY: &str = "
int classify(int a, int b, int c, int d) {
    int acc = 0;
    if (a > 0) { acc = acc + 1; }
    if (b > 0) { acc = acc + 2; }
    if (c > 0) { acc = acc + 4; }
    if (d > 0) { acc = acc + 8; }
    return acc;
}
";

const BRANCHY_PATHS: usize = 16;

fn explore_branchy(max_paths: usize, workers: usize) -> Exploration {
    let unit = minic::parse(BRANCHY).expect("branchy program parses");
    let config = EngineConfig {
        max_paths,
        workers,
        ..EngineConfig::default()
    };
    let bindings = vec![ParamBinding::SecretScalar; 4];
    Engine::new(&unit, config)
        .run("classify", &bindings)
        .expect("branchy program explores")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every finished path is accounted for, at any budget and worker
    /// count: kept paths show up in `paths`/`completed`, budget-dropped
    /// ones in `dropped_paths`, and both leave a return observation in the
    /// global event log. Budgets stay ≥ 8 so the fork backstop
    /// (`max_paths * 4`) never truncates the 15-fork exploration.
    #[test]
    fn harvest_accounts_for_every_path(budget in 8usize..40, workers in 1usize..5) {
        let exploration = explore_branchy(budget, workers);
        let stats = &exploration.stats;

        prop_assert_eq!(stats.completed, exploration.paths.len());
        prop_assert_eq!(stats.completed, budget.min(BRANCHY_PATHS));
        prop_assert_eq!(stats.completed + stats.dropped_paths, BRANCHY_PATHS);
        prop_assert_eq!(exploration.exhausted, budget < BRANCHY_PATHS);

        let return_events = exploration
            .events
            .iter()
            .filter(|event| matches!(event.channel, Channel::Return))
            .count();
        prop_assert_eq!(return_events, BRANCHY_PATHS);

        // And the whole exploration is budget-deterministic: workers only
        // change wall-clock time, never the result. (`Exploration`
        // equality covers the degradation ledger too.)
        prop_assert_eq!(exploration, explore_branchy(budget, 1));
    }
}

/// The feasibility-cache hit/miss counters are part of the deterministic
/// output: probes are classified against the canonical probe set at merge
/// time (first sighting in merge order = miss, repeat = hit), so the split
/// is invariant under worker count *and* live-cache capacity — it measures
/// the workload's probe redundancy, not scheduling-dependent occupancy.
#[test]
fn cache_counters_are_worker_count_invariant() {
    let sequential = explore_branchy(40, 1);
    assert!(
        sequential.stats.cache_hits + sequential.stats.cache_misses > 0,
        "the branchy program must exercise the feasibility cache"
    );
    for workers in [2, 4] {
        let parallel = explore_branchy(40, workers);
        assert_eq!(
            (sequential.stats.cache_hits, sequential.stats.cache_misses),
            (parallel.stats.cache_hits, parallel.stats.cache_misses),
            "workers={workers} changed the cache accounting"
        );
    }

    // Capacity-independence: shrinking the live cache to nothing changes
    // what `cache.check` memoizes, but not the deterministic accounting.
    let unit = minic::parse(BRANCHY).expect("branchy program parses");
    let config = EngineConfig {
        max_paths: 40,
        workers: 4,
        feasibility_cache: 0,
        ..EngineConfig::default()
    };
    let bindings = vec![ParamBinding::SecretScalar; 4];
    let uncached = Engine::new(&unit, config)
        .run("classify", &bindings)
        .expect("branchy program explores");
    assert_eq!(
        (sequential.stats.cache_hits, sequential.stats.cache_misses),
        (uncached.stats.cache_hits, uncached.stats.cache_misses),
        "cache capacity changed the deterministic accounting"
    );
}

/// The degradation ledger is part of the deterministic output: a
/// budget-truncated exploration reports the same coalesced entries at
/// every worker count, in the same order.
#[test]
fn degradation_ledger_is_worker_count_invariant() {
    let sequential = explore_branchy(8, 1);
    let parallel = explore_branchy(8, 4);
    assert_eq!(sequential.ledger, parallel.ledger);
    assert!(
        sequential
            .ledger
            .entries()
            .iter()
            .any(|d| matches!(d, Degradation::PathBudget { .. })),
        "a truncated run must disclose the path budget: {:?}",
        sequential.ledger
    );
    // An untruncated run keeps a clean ledger.
    let clean = explore_branchy(40, 4);
    assert!(clean.ledger.is_empty(), "{:?}", clean.ledger);
    assert!(clean.ledger.is_complete());
}
