//! Governing guarantees of the two-tier feasibility pruning pipeline.
//!
//! 1. **Soundness against the concrete evaluator.** Conjunctions built
//!    *assignment-first* (pick concrete values, then emit only guards the
//!    values satisfy) are satisfiable by construction, so no tier of the
//!    pipeline may ever answer "infeasible" at any prefix, in any mode.
//! 2. **Widening termination.** Guard chains far longer than the
//!    `WIDEN_AFTER` refinement budget terminate, and a contradiction past
//!    the freeze point is still refuted (the bottom check never freezes).
//! 3. **Findings are mode-invariant.** Stronger tiers only prune
//!    concretely unsatisfiable paths, so violations and degradations are
//!    identical across `syntactic`, `intervals`, and `full`.
//! 4. **Worker-count byte-identity per mode.** Reports — including the
//!    per-tier refutation counters — are byte-identical at any worker
//!    count, for every feasibility mode.
//! 5. **Pruning is real.** On the branch-heavy corpus, `full` explores
//!    strictly fewer paths than `intervals`, which explores strictly
//!    fewer than `syntactic`.

use minic::ast::BinOp;
use privacyscope::report::Finding;
use privacyscope::{Analyzer, AnalyzerOptions, FeasibilityMode, Report};
use symexec::concrete;
use symexec::constraints::{probe_pipeline, ConstraintManager, Feasibility};
use symexec::domain::AbstractDomain;
use symexec::path::PathCondition;
use symexec::value::{SVal, Symbol};

/// SplitMix64, locally vendored so the property stream never depends on an
/// external RNG staying fixed (same rationale as `mlcorpus::synth`).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const MODES: [FeasibilityMode; 3] = [
    FeasibilityMode::Syntactic,
    FeasibilityMode::Intervals,
    FeasibilityMode::Full,
];

const SYMBOLS: u32 = 6;

fn sym(id: u32) -> SVal {
    SVal::Sym(Symbol::new(id, format!("s{id}")))
}

/// Emits one guard that is TRUE under `assignment` — the generator picks
/// the comparison *after* looking at the concrete values, so the
/// conjunction of every emitted guard is satisfiable by construction.
fn true_atom(rng: &mut SplitMix64, assignment: &concrete::Assignment) -> SVal {
    let x = rng.below(u64::from(SYMBOLS)) as u32;
    let vx = assignment[&x];
    match rng.below(5) {
        // Affine guard on one symbol: (x * m + c) <op> k.
        0 => {
            let m = 1 + rng.below(4) as i64;
            let c = rng.below(20) as i64 - 10;
            let lhs = SVal::binary(
                BinOp::Add,
                SVal::binary(BinOp::Mul, sym(x), SVal::Int(m)),
                SVal::Int(c),
            );
            let v = vx * m + c;
            pick_true_cmp(rng, lhs, v)
        }
        // Residue guard: x % k == vx % k (Rust remainder semantics on
        // both sides, so it holds for negative vx too).
        1 => {
            let k = 2 + rng.below(7) as i64;
            SVal::binary(
                BinOp::Eq,
                SVal::binary(BinOp::Rem, sym(x), SVal::Int(k)),
                SVal::Int(vx % k),
            )
        }
        // Variable-vs-variable order, chosen to match the assignment.
        2 => {
            let y = rng.below(u64::from(SYMBOLS)) as u32;
            let vy = assignment[&y];
            let op = match vx.cmp(&vy) {
                std::cmp::Ordering::Less => BinOp::Lt,
                std::cmp::Ordering::Equal => BinOp::Eq,
                std::cmp::Ordering::Greater => BinOp::Gt,
            };
            SVal::binary(op, sym(x), sym(y))
        }
        // Difference guard: x - y <op> k.
        3 => {
            let y = rng.below(u64::from(SYMBOLS)) as u32;
            let vy = assignment[&y];
            let lhs = SVal::binary(BinOp::Sub, sym(x), sym(y));
            pick_true_cmp(rng, lhs, vx - vy)
        }
        // Plain bound on one symbol.
        _ => pick_true_cmp(rng, sym(x), vx),
    }
}

/// Wraps `lhs` (whose concrete value is `v`) in a comparison against a
/// constant chosen so the comparison is true.
fn pick_true_cmp(rng: &mut SplitMix64, lhs: SVal, v: i64) -> SVal {
    let slack = rng.below(16) as i64;
    let (op, k) = match rng.below(6) {
        0 => (BinOp::Lt, v + 1 + slack),
        1 => (BinOp::Le, v + slack),
        2 => (BinOp::Gt, v - 1 - slack),
        3 => (BinOp::Ge, v - slack),
        4 => (BinOp::Eq, v),
        _ => (BinOp::Ne, v + 1 + slack),
    };
    SVal::binary(op, lhs, SVal::Int(k))
}

#[test]
fn satisfiable_prefixes_are_never_refuted_by_any_tier() {
    for case in 0..200u64 {
        let mut rng = SplitMix64(case.wrapping_mul(0x5851_f42d_4c95_7f2d) ^ 0x9e);
        let assignment =
            concrete::assignment((0..SYMBOLS).map(|id| (id, rng.below(201) as i64 - 100)));
        let mut cm = ConstraintManager::new();
        let mut domain = AbstractDomain::new();
        let mut path = PathCondition::new();
        for step in 0..8 {
            let atom = true_atom(&mut rng, &assignment);
            assert_eq!(
                concrete::eval_bool(&atom, &assignment),
                Some(true),
                "case {case} step {step}: generator emitted a guard that is \
                 not concretely true — the property would be vacuous"
            );
            for mode in MODES {
                let outcome = probe_pipeline(mode, &cm, &domain, &path, &atom, true);
                assert_eq!(
                    outcome.feasibility(),
                    Feasibility::Feasible,
                    "case {case} step {step} mode {}: refuted a concretely \
                     satisfiable prefix ({outcome:?} for {atom:?})",
                    mode.as_str()
                );
            }
            assert_eq!(cm.assume(&atom, true), Feasibility::Feasible);
            assert_eq!(domain.assume(&atom, true), Feasibility::Feasible);
            path.push(atom, true);
        }
    }
}

/// A module whose entry nests `depth` consistent guards on one public
/// scalar — every guard refines the same interval fact, driving the
/// per-symbol meet counter far past the widening freeze — optionally
/// capped by one contradictory innermost guard.
fn deep_guard_module(depth: usize, contradict: bool) -> (String, String) {
    let mut src = String::from("int deep_guard(int pub0, int *out) {\n    int scratch = 0;\n");
    for i in 0..depth {
        src.push_str(&format!("    if (pub0 > {i}) {{\n"));
    }
    if contradict {
        // Affine so only the interval domain sees it: the syntactic tier
        // deliberately keeps multiplication feasible (paper faithfulness).
        src.push_str("    if (pub0 * 3 < 5) { scratch = scratch + 1; }\n");
    }
    src.push_str("    scratch = scratch + 1;\n");
    for _ in 0..depth {
        src.push_str("    }\n");
    }
    src.push_str("    out[0] = 7;\n    return scratch * 0;\n}\n");
    let edl = "enclave { trusted {\n        public int deep_guard(int pub0, [out, count=1] int *out);\n    }; };\n"
        .to_string();
    (src, edl)
}

fn analyze_with(source: &str, edl: &str, entry: &str, options: AnalyzerOptions) -> Report {
    Analyzer::from_sources(source, edl, options)
        .expect("module configures")
        .analyze(entry)
        .expect("module analyzes")
}

#[test]
fn widening_freeze_terminates_and_keeps_refutation_power() {
    // Comfortably past WIDEN_AFTER consistent refinements of the same
    // fact, then a contradiction past the freeze point. The nesting is
    // deep enough that parser/engine recursion outgrows the default test
    // thread stack in debug builds, so the analyses run on a dedicated
    // big-stack thread.
    let depth = symexec::domain::WIDEN_AFTER as usize + 16;
    for contradict in [false, true] {
        let (source, edl) = deep_guard_module(depth, contradict);
        let mut reports = Vec::new();
        for mode in MODES {
            let (source, edl) = (source.clone(), edl.clone());
            let report = std::thread::Builder::new()
                .stack_size(64 * 1024 * 1024)
                .spawn(move || {
                    analyze_with(
                        &source,
                        &edl,
                        "deep_guard",
                        AnalyzerOptions {
                            max_paths: 4096,
                            workers: 1,
                            feasibility: mode,
                            ..AnalyzerOptions::default()
                        },
                    )
                })
                .expect("spawns")
                .join()
                .expect("deep-guard analysis completes");
            assert!(
                !report.is_degraded(),
                "mode {}: the guard chain must be explored exhaustively",
                mode.as_str()
            );
            assert!(report.is_secure(), "the module is benign");
            reports.push(report);
        }
        if contradict {
            // The contradictory innermost branch arrives after the fact
            // froze; the bottom check must still refute it.
            assert!(
                reports[1].stats.tier1_refuted > 0,
                "intervals must refute the post-freeze contradiction"
            );
            assert!(
                reports[1].stats.paths < reports[0].stats.paths,
                "pruning the contradiction must save a path"
            );
        }
    }
}

fn branch_heavy_options(mode: FeasibilityMode, workers: usize) -> AnalyzerOptions {
    AnalyzerOptions {
        max_paths: 4096,
        workers,
        feasibility: mode,
        ..AnalyzerOptions::default()
    }
}

/// The classification a soundness verdict is made of: which leak, where,
/// from which secret. Exemplar `observations` legitimately differ across
/// modes — pruning removes concretely-infeasible witness paths, so the
/// recorded representative path can change — but the violation set may not.
fn classification(findings: &[Finding]) -> Vec<(String, String, String)> {
    findings
        .iter()
        .map(|f| (format!("{:?}", f.kind), f.channel.clone(), f.secret.clone()))
        .collect()
}

#[test]
fn violation_sets_are_mode_invariant_on_the_synthetic_corpus() {
    for seed in 0..12u64 {
        let module = mlcorpus::synth::generate(seed);
        let baseline = analyze_with(
            &module.source,
            &module.edl,
            module.entry,
            branch_heavy_options(FeasibilityMode::Syntactic, 1),
        );
        for mode in [FeasibilityMode::Intervals, FeasibilityMode::Full] {
            let report = analyze_with(
                &module.source,
                &module.edl,
                module.entry,
                branch_heavy_options(mode, 1),
            );
            assert_eq!(
                classification(&baseline.findings),
                classification(&report.findings),
                "seed {seed}: mode {} changed the violation set",
                mode.as_str()
            );
            assert_eq!(
                baseline.is_secure(),
                report.is_secure(),
                "seed {seed}: mode {} flipped the verdict",
                mode.as_str()
            );
        }
    }
}

#[test]
fn reports_and_tier_counters_are_worker_count_invariant_per_mode() {
    let module = mlcorpus::synth::generate_branch_heavy(11, 1);
    for mode in MODES {
        let mut sequential = analyze_with(
            &module.source,
            &module.edl,
            module.entry,
            branch_heavy_options(mode, 1),
        );
        let mut parallel = analyze_with(
            &module.source,
            &module.edl,
            module.entry,
            branch_heavy_options(mode, 4),
        );
        // Wall-clock time is the one field workers are allowed to change.
        sequential.stats.time = std::time::Duration::ZERO;
        parallel.stats.time = std::time::Duration::ZERO;
        assert_eq!(
            sequential.to_json(),
            parallel.to_json(),
            "mode {}: report bytes diverged between workers 1 and 4",
            mode.as_str()
        );
        assert_eq!(
            (
                sequential.stats.tier1_refuted,
                sequential.stats.tier2_refuted,
                sequential.stats.tier2_unknown,
            ),
            (
                parallel.stats.tier1_refuted,
                parallel.stats.tier2_refuted,
                parallel.stats.tier2_unknown,
            ),
            "mode {}: per-tier counters diverged between workers 1 and 4",
            mode.as_str()
        );
        assert_eq!(
            sequential.profile,
            parallel.profile,
            "mode {}",
            mode.as_str()
        );
    }
}

#[test]
fn stronger_tiers_explore_strictly_fewer_paths_on_branch_heavy_corpus() {
    let module = mlcorpus::synth::generate_branch_heavy(3, 1);
    let mut by_mode = Vec::new();
    for mode in MODES {
        let report = analyze_with(
            &module.source,
            &module.edl,
            module.entry,
            branch_heavy_options(mode, 1),
        );
        assert!(!report.is_degraded(), "mode {} must finish", mode.as_str());
        by_mode.push(report);
    }
    let [syntactic, intervals, full] = by_mode.as_slice() else {
        unreachable!("three modes analyzed")
    };
    assert!(
        intervals.stats.paths < syntactic.stats.paths,
        "intervals ({}) must prune below syntactic ({})",
        intervals.stats.paths,
        syntactic.stats.paths
    );
    assert!(
        full.stats.paths < intervals.stats.paths,
        "full ({}) must prune below intervals ({}) — the variable-order \
         cycle is invisible to a non-relational domain",
        full.stats.paths,
        intervals.stats.paths
    );
    assert!(
        intervals.stats.tier1_refuted > 0,
        "interval refutations recorded"
    );
    assert!(full.stats.tier2_refuted > 0, "solver refutations recorded");
    assert_eq!(
        syntactic.findings, full.findings,
        "pruning never changes findings"
    );
}
