//! The paper's §VI-D case studies, end to end.
//!
//! Case study 1: the as-ported Recommender contains exactly six
//! nonreversibility violations. Case study 2: explicit and implicit
//! malicious logic injected into Kmeans is detected, while the clean
//! variants raise no alarms.

use privacyscope::{Analyzer, AnalyzerOptions, FindingKind, Report};

fn fast_options() -> AnalyzerOptions {
    AnalyzerOptions {
        max_paths: 16,
        ..AnalyzerOptions::default()
    }
}

fn analyze(module: &mlcorpus::Module, options: AnalyzerOptions) -> Report {
    Analyzer::from_sources(module.source, module.edl, options)
        .expect("module builds")
        .analyze(module.entry)
        .expect("module analyzes")
}

#[test]
fn case_study_1_recommender_has_exactly_six_violations() {
    let module = mlcorpus::recommender_vulnerable();
    let report = analyze(&module, AnalyzerOptions::default());
    assert_eq!(
        report.findings.len(),
        6,
        "expected the paper's 6 violations, got:\n{report}"
    );
    assert_eq!(report.explicit_findings().count(), 4, "{report}");
    assert_eq!(report.implicit_findings().count(), 2, "{report}");
}

#[test]
fn case_study_1_violations_name_the_right_secrets() {
    let module = mlcorpus::recommender_vulnerable();
    let report = analyze(&module, AnalyzerOptions::default());

    let explicit_secrets: Vec<&str> = report
        .explicit_findings()
        .map(|f| f.secret.as_str())
        .collect();
    // the four explicit leaks hit ratings[1..4] (one each)
    for secret in ["ratings[1]", "ratings[2]", "ratings[3]", "ratings[4]"] {
        assert!(
            explicit_secrets.contains(&secret),
            "missing explicit leak of {secret}:\n{report}"
        );
    }
    // both implicit leaks pin ratings[0]
    for finding in report.implicit_findings() {
        assert_eq!(finding.secret, "ratings[0]", "{report}");
    }
    // the OCALL leak goes through the logging sink
    assert!(
        report
            .explicit_findings()
            .any(|f| f.channel.contains("ocall_log_rating")),
        "{report}"
    );
}

#[test]
fn case_study_1_fixed_recommender_is_secure() {
    let module = mlcorpus::recommender::fixed();
    let report = analyze(&module, AnalyzerOptions::default());
    assert!(report.is_secure(), "false positives on the fix:\n{report}");
}

#[test]
fn clean_linear_regression_is_secure() {
    let module = mlcorpus::linear_regression::module();
    let report = analyze(&module, AnalyzerOptions::default());
    assert!(report.is_secure(), "{report}");
    assert_eq!(report.stats.paths, 1, "LR is branch-free");
}

#[test]
fn clean_kmeans_is_secure() {
    let module = mlcorpus::kmeans::module();
    let report = analyze(&module, fast_options());
    assert!(report.is_secure(), "{report}");
    assert!(report.stats.forks > 0, "kmeans must branch on data");
}

#[test]
fn case_study_2_injected_kmeans_leaks_are_detected() {
    for injection in mlcorpus::inject::kmeans_injections().expect("corpus anchors intact") {
        let report = analyze(&injection.module, fast_options());
        assert!(
            !report.is_secure(),
            "payload `{}` went undetected",
            injection.name
        );
        // Every payload carries machine-readable ground-truth labels; each
        // must be matched by a reported (kind, channel, secret) finding.
        assert!(
            !injection.expectations.is_empty(),
            "payload `{}` has no ground-truth labels",
            injection.name
        );
        let keys = privacyscope::oracle::finding_keys(&report);
        for expectation in &injection.expectations {
            assert!(
                keys.iter()
                    .any(|(explicit, channel, secret)| expectation
                        .matches(*explicit, channel, secret)),
                "payload `{}`: expectation `{expectation}` unmatched:\n{report}",
                injection.name
            );
        }
        let kinds: Vec<FindingKind> = report.findings.iter().map(|f| f.kind).collect();
        if injection.explicit {
            assert!(
                kinds.contains(&FindingKind::Explicit),
                "payload `{}` should raise an explicit finding:\n{report}",
                injection.name
            );
        } else {
            assert!(
                kinds.contains(&FindingKind::Implicit),
                "payload `{}` should raise an implicit finding:\n{report}",
                injection.name
            );
        }
    }
}

#[test]
fn baseline_finds_explicit_but_not_implicit_on_recommender() {
    let module = mlcorpus::recommender_vulnerable();
    let report = privacyscope::baseline::analyze(module.source, module.edl, module.entry)
        .expect("baseline runs");
    // The DFA baseline sees the explicit copies (coarsely: one `ratings`
    // source), but is blind to both implicit leaks.
    assert!(report.explicit_findings().count() >= 1, "{report}");
    assert_eq!(report.implicit_findings().count(), 0, "{report}");
}

#[test]
fn baseline_misses_injected_implicit_leak() {
    let injection = mlcorpus::inject::kmeans_injections()
        .expect("corpus anchors intact")
        .into_iter()
        .find(|i| !i.explicit)
        .expect("an implicit payload exists");
    let module = injection.module;
    let report = privacyscope::baseline::analyze(module.source, module.edl, module.entry)
        .expect("baseline runs");
    assert_eq!(
        report.implicit_findings().count(),
        0,
        "a path-insensitive pass cannot see implicit flows"
    );
    let symbolic = analyze(&module, fast_options());
    assert!(symbolic.implicit_findings().count() >= 1);
}
