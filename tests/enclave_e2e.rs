//! End-to-end enclave runs: the corpus modules actually execute inside the
//! simulated enclave on synthetic data, and the TEE substrate (sealing,
//! attestation, marshalling, crypto sources) behaves per the threat model.

use mlcorpus::datasets;
use sgx_sim::attest::{self, PlatformKey};
use sgx_sim::enclave::{EcallArg, Enclave};
use sgx_sim::interp::{Value, Word};

fn float_buffer(values: &[f64]) -> Vec<Word> {
    values.iter().map(|v| Word::Float(*v)).collect()
}

fn floats(words: &[Word]) -> Vec<f64> {
    words
        .iter()
        .map(|w| match w {
            Word::Float(v) => *v,
            Word::Int(v) => *v as f64,
            Word::Uninit => f64::NAN,
        })
        .collect()
}

#[test]
fn linear_regression_recovers_the_generating_model() {
    let module = mlcorpus::linear_regression::module();
    let enclave = Enclave::load(module.source, module.edl).expect("loads");
    let data = datasets::regression(42);
    let result = enclave
        .ecall(
            module.entry,
            &[
                EcallArg::In(float_buffer(&data.xs)),
                EcallArg::In(float_buffer(&data.ys)),
                EcallArg::Out(7),
            ],
        )
        .expect("trains");
    assert_eq!(result.ret, Some(Value::Int(0)));
    let model = floats(&result.outs["model"]);
    // 60 epochs of GD on near-noiseless data: weights approach the truth
    for (got, want) in model[..3].iter().zip(data.true_weights) {
        assert!(
            (got - want).abs() < 0.35,
            "weight {got} too far from {want}; model = {model:?}"
        );
    }
    assert!(
        (model[3] - data.true_bias).abs() < 0.5,
        "bias {:?}",
        model[3]
    );
    // loss is small and R² is high
    assert!(model[4] < 1.0, "mse = {}", model[4]);
    assert!(model[5] > 0.9, "r² = {}", model[5]);
}

#[test]
fn kmeans_separates_the_two_blobs() {
    let module = mlcorpus::kmeans::module();
    let enclave = Enclave::load(module.source, module.edl).expect("loads");
    let points = datasets::kmeans_points(7);
    let result = enclave
        .ecall(
            module.entry,
            &[EcallArg::In(float_buffer(&points)), EcallArg::Out(7)],
        )
        .expect("clusters");
    let out = floats(&result.outs["result"]);
    // centroids are reported sorted and land near the blob centers
    assert!(out[0] < out[1]);
    assert!((out[0] - 10.0).abs() < 8.0, "low centroid {}", out[0]);
    assert!((out[1] - 90.0).abs() < 8.0, "high centroid {}", out[1]);
    // inertia is finite and positive
    assert!(out[2] > 0.0 && out[2] < 10_000.0);
}

#[test]
fn recommender_predictions_are_plausible_and_leaks_are_real() {
    let module = mlcorpus::recommender_vulnerable();
    let enclave = Enclave::load(module.source, module.edl).expect("loads");
    let ratings = datasets::ratings(3);
    let result = enclave
        .ecall(
            module.entry,
            &[EcallArg::In(float_buffer(&ratings)), EcallArg::Out(9)],
        )
        .expect("recommends");
    let out = floats(&result.outs["out"]);
    // predictions stay within the rating scale (loosely)
    for (item, prediction) in out.iter().take(5).enumerate() {
        assert!(
            (-1.0..=7.0).contains(prediction),
            "out[{item}] = {prediction}"
        );
    }
    // violation 1 really is invertible: out[5] = ratings[1]·2 + 7
    assert!((out[5] - (ratings[1] * 2.0 + 7.0)).abs() < 1e-9);
    assert!(((out[5] - 7.0) / 2.0 - ratings[1]).abs() < 1e-9);
    // violation 4: out[7] = ratings[4]·3
    assert!((out[7] / 3.0 - ratings[4]).abs() < 1e-9);
    // violation 3: the logging OCALL hands the host a raw rating
    assert_eq!(result.ocalls.len(), 1);
    let (ocall_name, ocall_args) = &result.ocalls[0];
    assert_eq!(ocall_name, "ocall_log_rating");
    match &ocall_args[0] {
        Value::Float(v) => assert!((v - (ratings[3] + 1.0)).abs() < 1e-9),
        other => panic!("expected float OCALL argument, got {other:?}"),
    }
    // violation 5: the return code pins `ratings[0] > 3`
    let expected_rc = i64::from(ratings[0] > 3.0);
    assert_eq!(result.ret, Some(Value::Int(expected_rc)));
}

#[test]
fn fixed_recommender_breaks_the_inversion() {
    let module = mlcorpus::recommender::fixed();
    let enclave = Enclave::load(module.source, module.edl).expect("loads");
    // two rating matrices differing ONLY in ratings[1]
    let mut a = datasets::ratings(3);
    let mut b = a.clone();
    a[1] = 1.0;
    b[1] = 4.0;
    let run = |m: &[f64]| {
        floats(
            &enclave
                .ecall(
                    module.entry,
                    &[EcallArg::In(float_buffer(m)), EcallArg::Out(9)],
                )
                .expect("runs")
                .outs["out"],
        )
    };
    let out_a = run(&a);
    let out_b = run(&b);
    // outputs still differ (the model uses the data!) …
    assert_ne!(out_a, out_b);
    // … but no output slot is an affine copy of ratings[1] any more:
    // inverting the old leak formula no longer recovers the rating.
    assert!(((out_a[5] - 7.0) / 2.0 - a[1]).abs() > 0.01);
    assert!(((out_b[5] - 7.0) / 2.0 - b[1]).abs() > 0.01);
}

#[test]
fn sealing_round_trips_only_for_the_same_enclave() {
    let module = mlcorpus::linear_regression::module();
    let enclave = Enclave::load(module.source, module.edl).expect("loads");
    let blob = enclave.seal(1, b"model-weights-v1");
    assert_eq!(enclave.unseal(&blob).expect("unseals"), b"model-weights-v1");

    let other = Enclave::load(
        mlcorpus::kmeans::module().source,
        mlcorpus::kmeans::module().edl,
    )
    .expect("loads");
    assert!(
        other.unseal(&blob).is_err(),
        "cross-enclave unseal must fail"
    );
}

#[test]
fn attestation_binds_the_measurement() {
    let module = mlcorpus::kmeans::module();
    let enclave = Enclave::load(module.source, module.edl).expect("loads");
    let platform = PlatformKey::from_seed(b"test-rig");
    let quote = enclave.quote(&platform, b"session-nonce");
    attest::verify(&platform, &quote, Some(enclave.measurement())).expect("verifies");

    // a tampered (injected) enclave has a different measurement, so the
    // host notices before provisioning any secrets
    let injected = &mlcorpus::inject::kmeans_injections().expect("corpus anchors intact")[0].module;
    let evil = Enclave::load(injected.source, injected.edl).expect("loads");
    assert_ne!(evil.measurement(), enclave.measurement());
    assert!(attest::verify(
        &platform,
        &evil.quote(&platform, b"x"),
        Some(enclave.measurement())
    )
    .is_err());
}

#[test]
fn marshalling_rejects_wrong_buffer_sizes() {
    let module = mlcorpus::kmeans::module();
    let enclave = Enclave::load(module.source, module.edl).expect("loads");
    let err = enclave
        .ecall(
            module.entry,
            &[
                EcallArg::In(float_buffer(&[1.0, 2.0])), // EDL says 10
                EcallArg::Out(7),
            ],
        )
        .unwrap_err();
    assert!(err.to_string().contains("EDL bound"), "{err}");
}

#[test]
fn enclave_runs_are_deterministic() {
    let module = mlcorpus::kmeans::module();
    let enclave = Enclave::load(module.source, module.edl).expect("loads");
    let points = datasets::kmeans_points(11);
    let run = || {
        enclave
            .ecall(
                module.entry,
                &[EcallArg::In(float_buffer(&points)), EcallArg::Out(7)],
            )
            .expect("runs")
    };
    assert_eq!(run(), run());
}
