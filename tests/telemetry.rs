//! Telemetry is purely observational: with tracing, metrics, and the
//! leveled logger enabled, every analysis artifact — the report and every
//! checkpoint byte — is identical to a telemetry-off run, at any worker
//! count. The trace itself carries the full span taxonomy (analyzer
//! phases, exploration waves, path tasks, checkpoint writes, enclave
//! boundary crossings) with valid parent links.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Duration;

use mlcorpus::datasets;
use privacyscope::{Analyzer, AnalyzerOptions, Report};
use serde_json::Value;
use sgx_sim::enclave::{EcallArg, Enclave};
use sgx_sim::interp::Word;
use telemetry::{Level, Telemetry, TelemetryConfig};

fn tmp_path(tag: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "privacyscope_telemetry_{tag}_{}.{ext}",
        std::process::id()
    ))
}

fn live_telemetry(trace: Option<PathBuf>, metrics: Option<PathBuf>) -> Telemetry {
    TelemetryConfig {
        trace_out: trace,
        metrics_out: metrics,
        log_level: Level::Off,
        timings: false,
        collect_metrics: false,
    }
    .build()
    .expect("telemetry sinks open")
}

/// Analyzes the recommender corpus module with the given handle, and —
/// when `checkpoint` is set — snapshots at every wave boundary.
fn analyze(telemetry: Telemetry, workers: usize, checkpoint: Option<PathBuf>) -> Report {
    let module = mlcorpus::recommender::module();
    let options = AnalyzerOptions {
        max_paths: 32,
        workers,
        checkpoint_every: usize::from(checkpoint.is_some()),
        checkpoint,
        telemetry,
        ..AnalyzerOptions::default()
    };
    Analyzer::from_sources(module.source, module.edl, options)
        .expect("analyzer builds")
        .analyze(module.entry)
        .expect("analysis completes")
}

/// The report's exact JSON bytes with the only wall-clock field zeroed.
fn normalized_json(mut report: Report) -> String {
    report.stats.time = Duration::ZERO;
    report.to_json()
}

#[test]
fn reports_are_byte_identical_with_telemetry_on_or_off() {
    for workers in [1, 4] {
        let off = analyze(Telemetry::disabled(), workers, None);
        let trace = tmp_path(&format!("report_w{workers}"), "jsonl");
        let metrics = tmp_path(&format!("report_w{workers}"), "json");
        let handle = live_telemetry(Some(trace.clone()), Some(metrics.clone()));
        let on = analyze(handle.clone(), workers, None);
        handle.finish().expect("telemetry flushes");
        assert!(
            on.stats.cache_hits + on.stats.cache_misses > 0,
            "the exploration must exercise the feasibility cache"
        );
        assert_eq!(
            normalized_json(off),
            normalized_json(on),
            "telemetry changed the report at workers={workers}"
        );
        assert!(metrics.exists(), "metrics summary was not written");
        let _ = std::fs::remove_file(&trace);
        let _ = std::fs::remove_file(&metrics);
    }
}

#[test]
fn checkpoint_bytes_are_identical_with_telemetry_on_or_off() {
    for workers in [1, 4] {
        let off_path = tmp_path(&format!("ckpt_off_w{workers}"), "ckpt");
        let on_path = tmp_path(&format!("ckpt_on_w{workers}"), "ckpt");
        let trace = tmp_path(&format!("ckpt_w{workers}"), "jsonl");
        analyze(Telemetry::disabled(), workers, Some(off_path.clone()));
        let handle = live_telemetry(Some(trace.clone()), None);
        analyze(handle.clone(), workers, Some(on_path.clone()));
        handle.finish().expect("telemetry flushes");
        let off_bytes = std::fs::read(&off_path).expect("telemetry-off snapshot exists");
        let on_bytes = std::fs::read(&on_path).expect("telemetry-on snapshot exists");
        assert_eq!(
            off_bytes, on_bytes,
            "telemetry changed checkpoint bytes at workers={workers}"
        );
        let _ = std::fs::remove_file(&off_path);
        let _ = std::fs::remove_file(&on_path);
        let _ = std::fs::remove_file(&trace);
    }
}

fn string_field<'v>(value: &'v Value, key: &str) -> Option<&'v str> {
    match &value[key] {
        Value::String(text) => Some(text.as_str()),
        _ => None,
    }
}

fn u64_field(value: &Value, key: &str) -> Option<u64> {
    match &value[key] {
        Value::Number(number) => number.as_u64(),
        _ => None,
    }
}

/// Parses a JSONL trace into records (already validated as objects).
fn read_trace(path: &PathBuf) -> Vec<Value> {
    let text = std::fs::read_to_string(path).expect("trace is readable");
    text.lines()
        .map(|line| serde_json::parse(line).expect("trace line parses as JSON"))
        .collect()
}

#[test]
fn trace_carries_the_span_taxonomy_with_valid_parent_links() {
    let trace = tmp_path("taxonomy", "jsonl");
    let metrics = tmp_path("taxonomy", "json");
    let ckpt = tmp_path("taxonomy", "ckpt");
    let handle = live_telemetry(Some(trace.clone()), Some(metrics.clone()));
    analyze(handle.clone(), 4, Some(ckpt.clone()));
    handle.finish().expect("telemetry flushes");

    let records = read_trace(&trace);
    let mut span_ids = BTreeSet::new();
    let mut span_names = BTreeSet::new();
    let mut spans = Vec::new(); // (id, name, parent)
    for record in &records {
        if string_field(record, "type") == Some("span") {
            let id = u64_field(record, "id").expect("span has an id");
            let name = string_field(record, "name")
                .expect("span has a name")
                .to_string();
            assert!(span_ids.insert(id), "duplicate span id {id}");
            span_names.insert(name.clone());
            spans.push((id, name, u64_field(record, "parent")));
        }
    }

    for expected in [
        "parse",
        "sema",
        "edl_ingest",
        "analyze",
        "explore",
        "policy",
        "report",
        "wave",
        "path_task",
        "checkpoint_write",
    ] {
        assert!(span_names.contains(expected), "missing `{expected}` span");
    }

    let name_of = |id: u64| {
        spans
            .iter()
            .find(|(sid, _, _)| *sid == id)
            .map(|(_, name, _)| name.as_str())
    };
    for (id, name, parent) in &spans {
        let Some(parent) = parent else { continue };
        assert!(
            span_ids.contains(parent),
            "span {id} (`{name}`) has dangling parent {parent}"
        );
        match name.as_str() {
            "path_task" => assert_eq!(name_of(*parent), Some("wave")),
            "wave" => assert_eq!(name_of(*parent), Some("explore")),
            "explore" | "policy" | "report" => assert_eq!(name_of(*parent), Some("analyze")),
            _ => {}
        }
    }

    let summary = serde_json::parse(&std::fs::read_to_string(&metrics).expect("metrics readable"))
        .expect("metrics summary parses");
    assert!(
        u64_field(&summary["counters"], "engine.waves").is_some_and(|waves| waves > 0),
        "engine.waves counter missing or zero"
    );
    assert!(
        u64_field(&summary["counters"], "engine.path_tasks").is_some_and(|tasks| tasks > 0),
        "engine.path_tasks counter missing or zero"
    );
    assert!(
        !matches!(summary["histograms"]["engine.wave_us"], Value::Null),
        "engine.wave_us histogram missing"
    );

    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&metrics);
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn enclave_boundary_crossings_emit_parented_spans() {
    let trace = tmp_path("boundary", "jsonl");
    let handle = live_telemetry(Some(trace.clone()), None);
    let module = mlcorpus::recommender_vulnerable();
    let enclave = Enclave::load(module.source, module.edl)
        .expect("enclave loads")
        .with_telemetry(handle.clone());
    let ratings: Vec<Word> = datasets::ratings(3)
        .iter()
        .map(|v| Word::Float(*v))
        .collect();
    let result = enclave
        .ecall(module.entry, &[EcallArg::In(ratings), EcallArg::Out(9)])
        .expect("ecall runs");
    assert_eq!(
        result.ocalls.len(),
        1,
        "the vulnerable module logs one OCALL"
    );
    handle.finish().expect("telemetry flushes");

    let records = read_trace(&trace);
    let ecall = records
        .iter()
        .find(|r| {
            string_field(r, "type") == Some("span") && string_field(r, "name") == Some("ecall")
        })
        .expect("an ecall span was emitted");
    let ecall_id = u64_field(ecall, "id").expect("ecall span has an id");
    assert_eq!(string_field(&ecall["fields"], "name"), Some(module.entry));
    assert!(
        u64_field(&ecall["fields"], "out_bytes").is_some_and(|bytes| bytes > 0),
        "ecall span must report the [out]-copy byte count"
    );
    let ocall = records
        .iter()
        .find(|r| {
            string_field(r, "type") == Some("span") && string_field(r, "name") == Some("ocall")
        })
        .expect("an ocall span was emitted");
    assert_eq!(
        u64_field(ocall, "parent"),
        Some(ecall_id),
        "the ocall span must parent to its enclosing ecall"
    );

    let _ = std::fs::remove_file(&trace);
}
