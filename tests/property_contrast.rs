//! The paper's §IV motivation, executable: ML programs *always* violate
//! classical noninterference (the trained model legitimately depends on
//! the private data), but the well-behaved ones satisfy nonreversibility.

use privacyscope::{Analyzer, AnalyzerOptions, Property};

fn analyze(module: &mlcorpus::Module, property: Property) -> privacyscope::Report {
    let options = AnalyzerOptions {
        property,
        max_paths: 16,
        ..AnalyzerOptions::default()
    };
    Analyzer::from_sources(module.source, module.edl, options)
        .expect("builds")
        .analyze(module.entry)
        .expect("analyzes")
}

#[test]
fn linear_regression_fails_noninterference_but_passes_nonreversibility() {
    let module = mlcorpus::linear_regression::module();
    let nonrev = analyze(&module, Property::Nonreversibility);
    assert!(nonrev.is_secure(), "{nonrev}");

    let nonint = analyze(&module, Property::Noninterference);
    assert!(
        !nonint.is_secure(),
        "a trainer whose model ignores the data would be useless"
    );
    // every model output depends on (many) training rows
    assert!(nonint.findings.len() >= 5, "{nonint}");
}

#[test]
fn kmeans_fails_noninterference_but_passes_nonreversibility() {
    let module = mlcorpus::kmeans::module();
    let nonrev = analyze(&module, Property::Nonreversibility);
    assert!(nonrev.is_secure(), "{nonrev}");

    let nonint = analyze(&module, Property::Noninterference);
    assert!(!nonint.is_secure());
}

#[test]
fn nonreversibility_findings_are_a_subset_of_noninterference_findings() {
    // Everything nonreversibility flags, noninterference also flags
    // (same channels; noninterference adds the ⊤-tainted ones).
    let module = mlcorpus::recommender_vulnerable();
    let nonrev = analyze(&module, Property::Nonreversibility);
    let nonint = analyze(&module, Property::Noninterference);
    assert!(nonint.findings.len() >= nonrev.findings.len());
    for finding in nonrev.explicit_findings() {
        assert!(
            nonint
                .explicit_findings()
                .any(|f| f.channel == finding.channel && f.secret == finding.secret),
            "noninterference lost {} / {}",
            finding.channel,
            finding.secret
        );
    }
}

#[test]
fn untainted_program_passes_both() {
    let source = "int f(char *secrets) { return 7; }";
    let edl_text = "enclave { trusted { public int f([in] char *secrets); }; };";
    for property in [Property::Nonreversibility, Property::Noninterference] {
        let options = AnalyzerOptions {
            property,
            ..AnalyzerOptions::default()
        };
        let report = Analyzer::from_sources(source, edl_text, options)
            .expect("builds")
            .analyze("f")
            .expect("analyzes");
        assert!(report.is_secure(), "{property}: {report}");
    }
}
