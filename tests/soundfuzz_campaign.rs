//! End-to-end differential soundness campaigns: determinism, the blinded
//! self-test (a deliberately disabled check must surface as a missed
//! leak with a small shrunk reproducer), and crash isolation (injected
//! panics and stalls degrade the verdict instead of aborting the run).

use privacyscope::oracle::{
    run_campaign, DisagreementClass, Evidence, HarnessDegradation, OracleConfig,
};

/// A campaign-test budget: small enough for CI, big enough to explore the
/// generator's leaky seeds exhaustively — the branch-heavy
/// contradiction-cluster modules peak at 126 syntactic paths (seed 4).
fn fast() -> OracleConfig {
    OracleConfig {
        max_paths: 192,
        ..OracleConfig::default()
    }
}

/// A scratch directory under the system tempdir, unique per test.
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("soundfuzz-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn same_seeds_same_bytes() {
    let config = fast();
    let first = run_campaign(0, 4, &config, None);
    let second = run_campaign(0, 4, &config, None);
    assert_eq!(
        first.to_json(),
        second.to_json(),
        "a campaign over fixed seeds must be byte-deterministic"
    );
}

#[test]
fn clean_campaign_finds_no_disagreements() {
    let campaign = run_campaign(0, 10, &fast(), None);
    assert_eq!(campaign.verdicts.len(), 10);
    assert_eq!(campaign.missed_leaks(), 0, "{}", campaign.to_json());
    assert_eq!(campaign.false_alarms(), 0, "{}", campaign.to_json());
    assert_eq!(campaign.degraded_modules(), 0, "{}", campaign.to_json());
    assert!(campaign.all_agreed());
    assert!(campaign.shrunk.is_empty());
}

#[test]
fn blinded_implicit_check_is_caught_as_missed_leak() {
    // Seed 4's only planted leak is implicit; blinding the implicit check
    // is the oracle's self-test — it must come back as a concretely
    // confirmed missed leak, with a shrunk reproducer in the corpus.
    let config = OracleConfig {
        check_implicit: false,
        ..fast()
    };
    let corpus = scratch("blind-implicit");
    let campaign = run_campaign(4, 5, &config, Some(&corpus));

    assert_eq!(campaign.missed_leaks(), 1, "{}", campaign.to_json());
    assert_eq!(campaign.false_alarms(), 0);
    let verdict = &campaign.verdicts[0];
    let missed = verdict.missed_leaks().next().expect("one missed leak");
    assert!(!missed.explicit, "seed 4's planted leak is implicit");
    assert_eq!(missed.evidence, Evidence::Confirmed);

    // The shrunk reproducer: within the acceptance bound, never larger
    // than the original, and on disk next to its ground-truth labels.
    assert_eq!(campaign.shrunk.len(), 1);
    let shrunk = &campaign.shrunk[0];
    assert_eq!(shrunk.seed, 4);
    assert_eq!(shrunk.class, DisagreementClass::MissedLeak);
    assert!(shrunk.loc <= shrunk.original_loc);
    assert!(
        shrunk.loc <= 40,
        "reproducer must shrink to <= 40 LoC, got {}",
        shrunk.loc
    );
    let entry = corpus.join("seed-4");
    for file in [
        "module.c",
        "module.edl",
        "expectations.json",
        "repro.txt",
        "shrunk.c",
    ] {
        assert!(entry.join(file).is_file(), "missing corpus file {file}");
    }
    let repro = std::fs::read_to_string(entry.join("repro.txt")).expect("repro file");
    assert!(
        repro.contains("--blind implicit"),
        "repro command must reproduce the blinding: {repro}"
    );
    let _ = std::fs::remove_dir_all(&corpus);
}

#[test]
fn blinded_explicit_check_is_caught_as_missed_leak() {
    // Seed 3 plants explicit leaks only.
    let config = OracleConfig {
        check_explicit: false,
        ..fast()
    };
    let campaign = run_campaign(3, 4, &config, None);
    assert!(campaign.missed_leaks() >= 1, "{}", campaign.to_json());
    assert!(campaign.verdicts[0]
        .missed_leaks()
        .all(|d| d.explicit && d.class == DisagreementClass::MissedLeak));
}

#[test]
fn injected_panic_degrades_instead_of_aborting() {
    let config = OracleConfig {
        inject_panic: true,
        ..fast()
    };
    let campaign = run_campaign(0, 3, &config, None);
    // The campaign ran to completion over every seed...
    assert_eq!(campaign.verdicts.len(), 3);
    // ...with no spurious disagreements, only typed degradations.
    assert_eq!(campaign.missed_leaks(), 0);
    assert_eq!(campaign.false_alarms(), 0);
    assert_eq!(campaign.degraded_modules(), 3);
    for verdict in &campaign.verdicts {
        assert!(
            verdict
                .degradations
                .iter()
                .any(|d| matches!(d, HarnessDegradation::AnalyzerPanic { .. })),
            "seed {} should record the panic",
            verdict.seed
        );
    }
}

#[test]
fn stalled_analyzer_is_cut_off_at_the_hard_timeout() {
    let config = OracleConfig {
        inject_stall_ms: Some(3_000),
        hard_timeout_ms: 100,
        ..fast()
    };
    let campaign = run_campaign(0, 2, &config, None);
    assert_eq!(campaign.verdicts.len(), 2);
    assert_eq!(campaign.missed_leaks(), 0);
    assert_eq!(campaign.false_alarms(), 0);
    for verdict in &campaign.verdicts {
        assert!(
            verdict
                .degradations
                .iter()
                .any(|d| matches!(d, HarnessDegradation::AnalyzerTimeout { .. })),
            "seed {} should record the timeout",
            verdict.seed
        );
    }
}
