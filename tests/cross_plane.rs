//! Cross-plane agreement: a PRIML program analyzed by the formal semantics
//! (`priml::analysis`) and its Mini-C transpilation analyzed by the full C
//! analyzer (`privacyscope::Analyzer`) must agree on the verdict — and the
//! transpiled code must *run* equivalently in the enclave simulator.

use privacyscope::{Analyzer, AnalyzerOptions};
use proptest::prelude::*;
use sgx_sim::enclave::{EcallArg, Enclave};
use sgx_sim::interp::Word;

fn c_plane_report(program: &priml::Program) -> privacyscope::Report {
    let transpiled = priml::transpile::to_minic(program).expect("transpiles");
    Analyzer::from_sources(
        &transpiled.source,
        &transpiled.edl,
        AnalyzerOptions::default(),
    )
    .expect("builds")
    .analyze("priml_main")
    .expect("analyzes")
}

#[test]
fn example1_verdicts_agree() {
    let program = priml::parse(priml::examples::EXAMPLE1).unwrap();
    let formal = priml::analysis::analyze(&program);
    let c_plane = c_plane_report(&program);
    assert_eq!(formal.explicit().count(), 1);
    assert_eq!(c_plane.explicit_findings().count(), 1);
    let finding = c_plane.explicit_findings().next().unwrap();
    assert_eq!(finding.channel, "out[1]");
    assert_eq!(finding.secret, "secrets[0]");
    // and the C plane synthesizes the recovery formula for 2·s
    assert_eq!(finding.recovery.as_deref(), Some("(observed / 2)"));
}

#[test]
fn example2_verdicts_agree() {
    let program = priml::parse(priml::examples::EXAMPLE2).unwrap();
    let formal = priml::analysis::analyze(&program);
    let c_plane = c_plane_report(&program);
    assert_eq!(formal.implicit().count(), 1);
    assert_eq!(c_plane.implicit_findings().count(), 1, "{c_plane}");
    let finding = c_plane.implicit_findings().next().unwrap();
    assert_eq!(finding.secret, "secrets[0]");
}

#[test]
fn secure_example_agrees() {
    let program = priml::parse(priml::examples::EXAMPLE2_SECURE).unwrap();
    let formal = priml::analysis::analyze(&program);
    let c_plane = c_plane_report(&program);
    assert!(formal.is_secure());
    assert!(c_plane.is_secure(), "{c_plane}");
}

#[test]
fn transpiled_code_runs_equivalently() {
    // the PRIML concrete interpreter and the enclave runtime produce the
    // same declassified outputs for the same secret stream
    let program = priml::parse(priml::examples::EXAMPLE1).unwrap();
    let transpiled = priml::transpile::to_minic(&program).unwrap();
    let enclave = Enclave::load(&transpiled.source, &transpiled.edl).expect("loads");
    for secrets in [[3u32, 4u32], [10, 20], [7, 0]] {
        let formal = priml::concrete::run(&program, &secrets).expect("runs");
        let result = enclave
            .ecall(
                "priml_main",
                &[
                    EcallArg::In(secrets.iter().map(|s| Word::Int(i64::from(*s))).collect()),
                    EcallArg::Out(transpiled.outputs),
                ],
            )
            .expect("runs in enclave");
        let outs: Vec<u32> = result.outs["out"]
            .iter()
            .map(|w| match w {
                Word::Int(v) => *v as u32,
                other => panic!("unexpected cell {other:?}"),
            })
            .collect();
        assert_eq!(outs, formal.declassified, "secrets {secrets:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random straight-line programs: explicit-leak verdicts agree between
    /// the formal plane and the C plane.
    #[test]
    fn straightline_explicit_verdicts_agree(
        scale1 in 1u32..5,
        scale2 in 1u32..5,
        offset in 0u32..50,
        leak_first in any::<bool>(),
        mix in any::<bool>(),
    ) {
        let last = if mix {
            "declassify(a + b)".to_string()
        } else if leak_first {
            format!("declassify(a + {offset})")
        } else {
            format!("declassify(b + {offset})")
        };
        let source = format!(
            "a := {scale1} * get_secret(secret)\nb := {scale2} * get_secret(secret)\n{last}"
        );
        let program = priml::parse(&source).expect("parses");
        let formal = priml::analysis::analyze(&program);
        let c_plane = c_plane_report(&program);
        prop_assert_eq!(
            formal.explicit().count(),
            c_plane.explicit_findings().count(),
            "disagreement on {}",
            source
        );
        prop_assert_eq!(formal.is_secure(), c_plane.is_secure());
    }
}
