//! Crash-safe checkpoint/resume guarantees of the worklist engine.
//!
//! 1. A run interrupted by a deadline leaves a snapshot behind, and
//!    resuming it produces a final result **byte-identical** to an
//!    uninterrupted run — at any worker count.
//! 2. A periodic (`checkpoint_every`) snapshot taken mid-run survives the
//!    death of the writing engine: a fresh engine resumes from the file
//!    alone and reproduces the identical exploration.
//! 3. Stale, truncated, corrupt, or mismatched snapshots are rejected with
//!    typed errors before any exploration starts — never a panic, never a
//!    silently different result.

use std::path::PathBuf;

use privacyscope::{Analyzer, AnalyzerOptions};
use symexec::engine::{Engine, EngineConfig, Exploration, ParamBinding};
use symexec::{CheckpointError, Snapshot};

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "privacyscope_resume_{tag}_{}.ckpt",
        std::process::id()
    ))
}

/// Mirrors `Analyzer::bindings` for a default (no-override) configuration.
fn bindings_from_edl(edl_text: &str, entry: &str) -> Vec<ParamBinding> {
    let edl_file = edl::parse_edl(edl_text).expect("corpus EDL parses");
    let proto = edl_file.ecall(entry).expect("entry is a declared ECALL");
    proto
        .params
        .iter()
        .map(|param| {
            if param.is_pointer() {
                match (param.attributes.is_in(), param.attributes.is_out()) {
                    (true, true) => ParamBinding::InOutPointer,
                    (true, false) => ParamBinding::SecretPointer,
                    (false, true) => ParamBinding::OutPointer,
                    (false, false) => ParamBinding::Pointer,
                }
            } else {
                ParamBinding::Scalar
            }
        })
        .collect()
}

/// The analyzer's engine wiring for one corpus module, open for overrides.
fn module_config(module: &mlcorpus::Module, workers: usize) -> EngineConfig {
    let edl_file = edl::parse_edl(module.edl).expect("corpus EDL parses");
    let mut config = EngineConfig {
        max_paths: 32,
        workers,
        ..EngineConfig::default()
    };
    for sink in edl_file.ocall_names() {
        config.sink_functions.insert(sink);
    }
    for source in privacyscope::analyzer::DEFAULT_DECRYPT_FUNCTIONS {
        config.source_functions.insert(source.to_string());
    }
    config
}

fn explore(module: &mlcorpus::Module, config: EngineConfig) -> Exploration {
    let unit = minic::parse(module.source).expect("corpus source parses");
    let bindings = bindings_from_edl(module.edl, module.entry);
    Engine::new(&unit, config)
        .run(module.entry, &bindings)
        .expect("corpus module explores")
}

fn resume(module: &mlcorpus::Module, config: EngineConfig, snapshot: Snapshot) -> Exploration {
    let unit = minic::parse(module.source).expect("corpus source parses");
    let bindings = bindings_from_edl(module.edl, module.entry);
    Engine::new(&unit, config)
        .resume(module.entry, &bindings, snapshot)
        .expect("corpus module resumes")
}

#[test]
fn resume_after_deadline_matches_uninterrupted_on_ml_corpus() {
    for module in mlcorpus::modules() {
        for workers in [1, 4] {
            let path = tmp_path(&format!("deadline_{}_w{workers}", module.entry));
            let interrupted = explore(
                &module,
                EngineConfig {
                    deadline: Some(std::time::Duration::ZERO),
                    checkpoint: Some(path.clone()),
                    ..module_config(&module, workers)
                },
            );
            assert_eq!(
                interrupted.checkpoint.as_deref(),
                Some(path.as_path()),
                "{}: the cut run must report its snapshot",
                module.name
            );

            let snapshot = Snapshot::load(&path).expect("snapshot loads");
            let resumed = resume(&module, module_config(&module, workers), snapshot);
            let uninterrupted = explore(&module, module_config(&module, workers));
            assert_eq!(
                resumed, uninterrupted,
                "{}: resume diverged at workers={workers}",
                module.name
            );
            assert!(!resumed.paths.is_empty(), "{}: no paths", module.name);
            let _ = std::fs::remove_file(&path);
        }
    }
}

#[test]
fn mid_run_snapshot_outlives_its_engine_and_resumes_identically() {
    let module = mlcorpus::recommender::module();
    for workers in [1, 4] {
        let path = tmp_path(&format!("periodic_w{workers}"));
        let full = {
            // The writing engine lives only in this scope: once it is
            // dropped, the file is the sole carrier of the frontier — the
            // same situation as a process killed after the write.
            explore(
                &module,
                EngineConfig {
                    checkpoint: Some(path.clone()),
                    checkpoint_every: 1,
                    ..module_config(&module, workers)
                },
            )
        };
        let snapshot = Snapshot::load(&path).expect("snapshot loads");
        assert!(snapshot.wave() > 0, "snapshot is from a mid-run boundary");
        let resumed = resume(&module, module_config(&module, workers), snapshot);
        let mut full = full;
        full.checkpoint = None; // the only permitted difference
        assert_eq!(
            resumed, full,
            "resume from a mid-run snapshot diverged at workers={workers}"
        );
        let _ = std::fs::remove_file(&path);
    }
}

/// Writes a small valid snapshot and returns its path and text.
fn valid_snapshot(tag: &str) -> (PathBuf, String) {
    let module = mlcorpus::recommender::module();
    let path = tmp_path(tag);
    explore(
        &module,
        EngineConfig {
            deadline: Some(std::time::Duration::ZERO),
            checkpoint: Some(path.clone()),
            ..module_config(&module, 1)
        },
    );
    let text = std::fs::read_to_string(&path).expect("snapshot is readable");
    (path, text)
}

#[test]
fn truncated_snapshot_is_rejected_with_a_typed_error() {
    let (path, text) = valid_snapshot("truncated");
    std::fs::write(&path, &text[..text.len() - 10]).expect("rewrite");
    assert!(matches!(
        Snapshot::load(&path),
        Err(CheckpointError::Truncated { .. })
    ));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_snapshot_is_rejected_with_a_typed_error() {
    let (path, text) = valid_snapshot("corrupt");
    // Flip one payload byte (same length, ASCII stays ASCII).
    let mut bytes = text.into_bytes();
    let last = bytes.len() - 2;
    bytes[last] ^= 1;
    std::fs::write(&path, &bytes).expect("rewrite");
    assert!(matches!(
        Snapshot::load(&path),
        Err(CheckpointError::ChecksumMismatch { .. })
    ));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn garbage_snapshot_is_rejected_with_a_typed_error() {
    let path = tmp_path("garbage");
    std::fs::write(&path, "not a checkpoint at all\n").expect("write");
    assert!(matches!(
        Snapshot::load(&path),
        Err(CheckpointError::Malformed { .. })
    ));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn analyzer_resume_reproduces_the_uninterrupted_report() {
    let module = mlcorpus::recommender::module();
    let path = tmp_path("analyzer");
    let options = |checkpoint: Option<PathBuf>, resume: Option<PathBuf>| AnalyzerOptions {
        max_paths: 32,
        checkpoint,
        resume,
        ..AnalyzerOptions::default()
    };
    let analyze = |options: AnalyzerOptions| {
        Analyzer::from_sources(module.source, module.edl, options)
            .expect("builds")
            .analyze(module.entry)
            .expect("analyzes")
    };

    let interrupted = analyze(AnalyzerOptions {
        deadline_ms: Some(0),
        ..options(Some(path.clone()), None)
    });
    assert_eq!(
        interrupted.checkpoint.as_deref(),
        Some(path.display().to_string().as_str()),
        "the cut report must carry the snapshot path"
    );
    assert!(interrupted.is_degraded());

    // Fresh analyzer, fresh engine: only the file survives.
    let mut resumed = analyze(options(None, Some(path.clone())));
    let mut uninterrupted = analyze(options(None, None));
    resumed.stats.time = std::time::Duration::ZERO;
    uninterrupted.stats.time = std::time::Duration::ZERO;
    assert_eq!(resumed, uninterrupted);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn analyzer_rejects_a_mismatched_snapshot() {
    let module = mlcorpus::recommender::module();
    let path = tmp_path("mismatch_analyzer");
    Analyzer::from_sources(
        module.source,
        module.edl,
        AnalyzerOptions {
            deadline_ms: Some(0),
            checkpoint: Some(path.clone()),
            ..AnalyzerOptions::default()
        },
    )
    .expect("builds")
    .analyze(module.entry)
    .expect("analyzes");

    // A different loop bound shapes the result, so the fingerprint differs.
    let err = Analyzer::from_sources(
        module.source,
        module.edl,
        AnalyzerOptions {
            loop_bound: 2,
            resume: Some(path.clone()),
            ..AnalyzerOptions::default()
        },
    )
    .expect("builds")
    .analyze(module.entry)
    .expect_err("mismatched snapshot must be rejected");
    match err {
        privacyscope::Error::Engine(symexec::EngineError::Checkpoint(
            CheckpointError::FingerprintMismatch { .. },
        )) => {}
        other => panic!("expected a typed fingerprint mismatch, got: {other}"),
    }
    let _ = std::fs::remove_file(&path);
}
