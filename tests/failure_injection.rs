//! Failure injection across the crate boundaries: malformed inputs,
//! exhausted budgets, and enclave boundary violations must surface as
//! typed errors (or flagged-degraded results), never panics.

use privacyscope::{Analyzer, AnalyzerOptions};
use sgx_sim::enclave::{EcallArg, Enclave};
use sgx_sim::interp::Word;

const GOOD_EDL: &str = "enclave { trusted { public int f([in] char *s, [out] char *out); }; };";

#[test]
fn malformed_c_is_a_source_error() {
    let err = Analyzer::from_sources(
        "int f(char *s { return 0; }",
        GOOD_EDL,
        AnalyzerOptions::default(),
    )
    .expect_err("must fail");
    assert!(matches!(err, privacyscope::Error::Source(_)), "{err}");
}

#[test]
fn malformed_edl_is_an_interface_error() {
    let err = Analyzer::from_sources(
        "int f(char *s, char *out) { return 0; }",
        "enclave { trusted { public int f([inout] char *s); }; };",
        AnalyzerOptions::default(),
    )
    .expect_err("must fail");
    assert!(matches!(err, privacyscope::Error::Edl(_)), "{err}");
}

#[test]
fn malformed_xml_is_a_config_error() {
    let err = Analyzer::with_config(
        "int f(char *s, char *out) { return 0; }",
        GOOD_EDL,
        "<privacyscope><target/></privacyscope>",
        AnalyzerOptions::default(),
    )
    .expect_err("must fail");
    assert!(matches!(err, privacyscope::Error::Config(_)), "{err}");
}

#[test]
fn semantic_errors_carry_positions() {
    let err = Analyzer::from_sources(
        "int f(char *s, char *out) { return undeclared_thing; }",
        GOOD_EDL,
        AnalyzerOptions::default(),
    )
    .expect_err("must fail");
    let text = err.to_string();
    assert!(text.contains("unknown variable"), "{text}");
    assert!(text.contains("byte"), "position missing: {text}");
}

#[test]
fn path_budget_exhaustion_is_flagged_not_fatal() {
    // 16 uncorrelated bit-test branches = 65536 paths; budget 8.
    let mut source = String::from("int f(char *s, char *out) { int acc = 0;\n");
    for i in 0..16 {
        source.push_str(&format!("if ((s[{i}] >> 1) & 1) acc += {i};\n"));
    }
    source.push_str("out[0] = acc + s[0] + s[1]; return 0; }");
    let options = AnalyzerOptions {
        max_paths: 8,
        ..AnalyzerOptions::default()
    };
    let report = Analyzer::from_sources(&source, GOOD_EDL, options)
        .expect("builds")
        .analyze("f")
        .expect("analyzes despite explosion");
    assert!(report.stats.exhausted, "must disclose the truncation");
    assert!(report.stats.paths <= 8);
    assert!(report.to_string().contains("budget exhausted"));
}

#[test]
fn runtime_out_of_bounds_is_a_fault() {
    let source = "int f(char *s, char *out) { return s[9999]; }";
    let enclave = Enclave::load(source, GOOD_EDL).expect("loads");
    let err = enclave
        .ecall("f", &[EcallArg::In(vec![Word::Int(1)]), EcallArg::Out(1)])
        .unwrap_err();
    assert!(err.to_string().contains("out-of-bounds"), "{err}");
}

#[test]
fn runtime_infinite_loop_is_bounded_by_fuel() {
    let source = "int f(char *s, char *out) { while (1) { } return 0; }";
    let enclave = Enclave::load(source, GOOD_EDL).expect("loads");
    let err = enclave
        .ecall("f", &[EcallArg::In(vec![Word::Int(1)]), EcallArg::Out(1)])
        .unwrap_err();
    assert!(err.to_string().contains("fuel"), "{err}");
}

#[test]
fn wrong_argument_shape_is_a_marshal_error() {
    let source = "int f(char *s, char *out) { return 0; }";
    let enclave = Enclave::load(source, GOOD_EDL).expect("loads");
    // scalar passed for a pointer parameter
    let err = enclave
        .ecall("f", &[EcallArg::Int(1), EcallArg::Out(1)])
        .unwrap_err();
    assert!(matches!(err, sgx_sim::SgxError::Marshal(_)), "{err}");
    // wrong arity
    let err = enclave.ecall("f", &[]).unwrap_err();
    assert!(matches!(err, sgx_sim::SgxError::Marshal(_)), "{err}");
}

#[test]
fn corrupted_seal_blob_is_rejected() {
    let source = "int f(char *s, char *out) { return 0; }";
    let enclave = Enclave::load(source, GOOD_EDL).expect("loads");
    let blob = enclave.seal(0, b"state");
    let mut json = serde_json::to_value(&blob).expect("serializes");
    json["tag"] = serde_json::json!(12345u64);
    let tampered: sgx_sim::seal::SealedBlob = serde_json::from_value(json).expect("deserializes");
    assert!(enclave.unseal(&tampered).is_err());
}

#[test]
fn priml_runtime_failures_are_typed() {
    let program = priml::parse("x := get_secret(secret); y := 1 / (x - x)").expect("parses");
    let err = priml::concrete::run(&program, &[5]).unwrap_err();
    assert_eq!(err, priml::concrete::RunError::DivisionByZero);
}

#[test]
fn analyzer_handles_division_by_symbolic_zero_gracefully() {
    // symbolic division never crashes the engine; the value degrades
    let source = "int f(char *s, char *out) { out[0] = 10 / (s[0] - s[0]); return 0; }";
    let report = Analyzer::from_sources(source, GOOD_EDL, AnalyzerOptions::default())
        .expect("builds")
        .analyze("f")
        .expect("analyzes");
    // s[0] - s[0] simplifies to 0; 10/0 is Unknown — nothing to invert,
    // so no explicit finding is produced for it.
    let _ = report;
}

#[test]
fn size_bounds_are_in_bytes() {
    // regression: `size=` is a byte bound; a double buffer of 10 elements
    // satisfies size=80.
    let source = "double first(double *xs) { return xs[0] + xs[1]; }";
    let edl_text = "enclave { trusted { public double first([in, size=80] double *xs); }; };";
    let enclave = Enclave::load(source, edl_text).expect("loads");
    let ok = enclave.ecall("first", &[EcallArg::In(vec![Word::Float(1.5); 10])]);
    assert!(ok.is_ok(), "{ok:?}");
    let too_short = enclave.ecall("first", &[EcallArg::In(vec![Word::Float(1.5); 9])]);
    assert!(too_short.is_err());
}

#[test]
fn baseline_verdicts_come_from_the_converged_fixpoint() {
    // regression: iteration-1 taint said `b` was single-source; the
    // converged taint is ⊤ (b picks up s2 through the loop-carried `a`),
    // so no finding may survive.
    let source = r#"
int f(char *s1, char *s2, char *out) {
    int a = s1[0];
    int b = 0;
    for (int i = 0; i < 4; i++) {
        b = a;
        a = a + s2[0];
    }
    out[0] = b;
    return 0;
}
"#;
    let edl_text =
        "enclave { trusted { public int f([in] char *s1, [in] char *s2, [out] char *out); }; };";
    let report = privacyscope::baseline::analyze(source, edl_text, "f").expect("runs");
    assert!(report.is_secure(), "stale pre-fixpoint finding: {report}");
}

#[test]
fn dropped_paths_still_contribute_return_observations() {
    // regression: an implicit return leak in a function whose later
    // branching exhausts the path budget must still be detected.
    // the post-leak branching is over *low* (non-secret) data, so π stays
    // single-source; the budget then drops one side of the secret fork.
    let mut source = String::from(
        "int f(char *s, int n, char *out) {\n    int rc = 0;\n    if (s[0] > 9) rc = 1;\n",
    );
    for i in 1..11 {
        source.push_str(&format!("    if ((n >> {i}) & 1) out[0] = out[0] + 0;\n"));
    }
    source.push_str("    return rc;\n}\n");
    let edl_text = "enclave { trusted { public int f([in] char *s, int n, [out] char *out); }; };";
    let options = AnalyzerOptions {
        max_paths: 4,
        ..AnalyzerOptions::default()
    };
    let report = Analyzer::from_sources(&source, edl_text, options)
        .expect("builds")
        .analyze("f")
        .expect("analyzes");
    assert!(report.stats.exhausted);
    assert!(
        report
            .implicit_findings()
            .any(|f| f.channel == "return value" && f.secret == "s[0]"),
        "{report}"
    );
}
