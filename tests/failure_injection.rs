//! Failure injection across the crate boundaries: malformed inputs,
//! exhausted budgets, deadlines, panicking path tasks, and injected
//! enclave boundary faults must surface as typed errors (or
//! flagged-degraded results), never panics.

use privacyscope::{Analyzer, AnalyzerOptions};
use sgx_sim::enclave::{EcallArg, Enclave};
use sgx_sim::interp::Word;
use sgx_sim::{Fault, FaultPlan, RetryPolicy, SgxError, Supervision};
use symexec::Degradation;

const GOOD_EDL: &str = "enclave { trusted { public int f([in] char *s, [out] char *out); }; };";

#[test]
fn malformed_c_is_a_source_error() {
    let err = Analyzer::from_sources(
        "int f(char *s { return 0; }",
        GOOD_EDL,
        AnalyzerOptions::default(),
    )
    .expect_err("must fail");
    assert!(matches!(err, privacyscope::Error::Source(_)), "{err}");
}

#[test]
fn malformed_edl_is_an_interface_error() {
    let err = Analyzer::from_sources(
        "int f(char *s, char *out) { return 0; }",
        "enclave { trusted { public int f([inout] char *s); }; };",
        AnalyzerOptions::default(),
    )
    .expect_err("must fail");
    assert!(matches!(err, privacyscope::Error::Edl(_)), "{err}");
}

#[test]
fn malformed_xml_is_a_config_error() {
    let err = Analyzer::with_config(
        "int f(char *s, char *out) { return 0; }",
        GOOD_EDL,
        "<privacyscope><target/></privacyscope>",
        AnalyzerOptions::default(),
    )
    .expect_err("must fail");
    assert!(matches!(err, privacyscope::Error::Config(_)), "{err}");
}

#[test]
fn semantic_errors_carry_positions() {
    let err = Analyzer::from_sources(
        "int f(char *s, char *out) { return undeclared_thing; }",
        GOOD_EDL,
        AnalyzerOptions::default(),
    )
    .expect_err("must fail");
    let text = err.to_string();
    assert!(text.contains("unknown variable"), "{text}");
    assert!(text.contains("byte"), "position missing: {text}");
}

#[test]
fn path_budget_exhaustion_is_flagged_not_fatal() {
    // 16 uncorrelated bit-test branches = 65536 paths; budget 8.
    let mut source = String::from("int f(char *s, char *out) { int acc = 0;\n");
    for i in 0..16 {
        source.push_str(&format!("if ((s[{i}] >> 1) & 1) acc += {i};\n"));
    }
    source.push_str("out[0] = acc + s[0] + s[1]; return 0; }");
    let options = AnalyzerOptions {
        max_paths: 8,
        ..AnalyzerOptions::default()
    };
    let report = Analyzer::from_sources(&source, GOOD_EDL, options)
        .expect("builds")
        .analyze("f")
        .expect("analyzes despite explosion");
    assert!(report.stats.exhausted, "must disclose the truncation");
    assert!(report.stats.paths <= 8);
    assert!(report.to_string().contains("budget exhausted"));
}

#[test]
fn runtime_out_of_bounds_is_a_fault() {
    let source = "int f(char *s, char *out) { return s[9999]; }";
    let enclave = Enclave::load(source, GOOD_EDL).expect("loads");
    let err = enclave
        .ecall("f", &[EcallArg::In(vec![Word::Int(1)]), EcallArg::Out(1)])
        .unwrap_err();
    assert!(err.to_string().contains("out-of-bounds"), "{err}");
}

#[test]
fn runtime_infinite_loop_is_bounded_by_fuel() {
    let source = "int f(char *s, char *out) { while (1) { } return 0; }";
    let enclave = Enclave::load(source, GOOD_EDL).expect("loads");
    let err = enclave
        .ecall("f", &[EcallArg::In(vec![Word::Int(1)]), EcallArg::Out(1)])
        .unwrap_err();
    assert!(err.to_string().contains("fuel"), "{err}");
}

#[test]
fn wrong_argument_shape_is_a_marshal_error() {
    let source = "int f(char *s, char *out) { return 0; }";
    let enclave = Enclave::load(source, GOOD_EDL).expect("loads");
    // scalar passed for a pointer parameter
    let err = enclave
        .ecall("f", &[EcallArg::Int(1), EcallArg::Out(1)])
        .unwrap_err();
    assert!(matches!(err, sgx_sim::SgxError::Marshal(_)), "{err}");
    // wrong arity
    let err = enclave.ecall("f", &[]).unwrap_err();
    assert!(matches!(err, sgx_sim::SgxError::Marshal(_)), "{err}");
}

#[test]
fn corrupted_seal_blob_is_rejected() {
    let source = "int f(char *s, char *out) { return 0; }";
    let enclave = Enclave::load(source, GOOD_EDL).expect("loads");
    let blob = enclave.seal(0, b"state");
    let mut json = serde_json::to_value(&blob).expect("serializes");
    json["tag"] = serde_json::json!(12345u64);
    let tampered: sgx_sim::seal::SealedBlob = serde_json::from_value(json).expect("deserializes");
    assert!(enclave.unseal(&tampered).is_err());
}

#[test]
fn priml_runtime_failures_are_typed() {
    let program = priml::parse("x := get_secret(secret); y := 1 / (x - x)").expect("parses");
    let err = priml::concrete::run(&program, &[5]).unwrap_err();
    assert_eq!(err, priml::concrete::RunError::DivisionByZero);
}

#[test]
fn analyzer_handles_division_by_symbolic_zero_gracefully() {
    // symbolic division never crashes the engine; the value degrades
    let source = "int f(char *s, char *out) { out[0] = 10 / (s[0] - s[0]); return 0; }";
    let report = Analyzer::from_sources(source, GOOD_EDL, AnalyzerOptions::default())
        .expect("builds")
        .analyze("f")
        .expect("analyzes");
    // s[0] - s[0] simplifies to 0; 10/0 is Unknown — nothing to invert,
    // so no explicit finding is produced for it.
    let _ = report;
}

#[test]
fn size_bounds_are_in_bytes() {
    // regression: `size=` is a byte bound; a double buffer of 10 elements
    // satisfies size=80.
    let source = "double first(double *xs) { return xs[0] + xs[1]; }";
    let edl_text = "enclave { trusted { public double first([in, size=80] double *xs); }; };";
    let enclave = Enclave::load(source, edl_text).expect("loads");
    let ok = enclave.ecall("first", &[EcallArg::In(vec![Word::Float(1.5); 10])]);
    assert!(ok.is_ok(), "{ok:?}");
    let too_short = enclave.ecall("first", &[EcallArg::In(vec![Word::Float(1.5); 9])]);
    assert!(too_short.is_err());
}

#[test]
fn baseline_verdicts_come_from_the_converged_fixpoint() {
    // regression: iteration-1 taint said `b` was single-source; the
    // converged taint is ⊤ (b picks up s2 through the loop-carried `a`),
    // so no finding may survive.
    let source = r#"
int f(char *s1, char *s2, char *out) {
    int a = s1[0];
    int b = 0;
    for (int i = 0; i < 4; i++) {
        b = a;
        a = a + s2[0];
    }
    out[0] = b;
    return 0;
}
"#;
    let edl_text =
        "enclave { trusted { public int f([in] char *s1, [in] char *s2, [out] char *out); }; };";
    let report = privacyscope::baseline::analyze(source, edl_text, "f").expect("runs");
    assert!(report.is_secure(), "stale pre-fixpoint finding: {report}");
}

#[test]
fn dropped_paths_still_contribute_return_observations() {
    // regression: an implicit return leak in a function whose later
    // branching exhausts the path budget must still be detected.
    // the post-leak branching is over *low* (non-secret) data, so π stays
    // single-source; the budget then drops one side of the secret fork.
    let mut source = String::from(
        "int f(char *s, int n, char *out) {\n    int rc = 0;\n    if (s[0] > 9) rc = 1;\n",
    );
    for i in 1..11 {
        source.push_str(&format!("    if ((n >> {i}) & 1) out[0] = out[0] + 0;\n"));
    }
    source.push_str("    return rc;\n}\n");
    let edl_text = "enclave { trusted { public int f([in] char *s, int n, [out] char *out); }; };";
    let options = AnalyzerOptions {
        max_paths: 4,
        ..AnalyzerOptions::default()
    };
    let report = Analyzer::from_sources(&source, edl_text, options)
        .expect("builds")
        .analyze("f")
        .expect("analyzes");
    assert!(report.stats.exhausted);
    assert!(
        report
            .implicit_findings()
            .any(|f| f.channel == "return value" && f.secret == "s[0]"),
        "{report}"
    );
}

#[test]
fn path_budget_exhaustion_lands_in_the_degradation_ledger() {
    let mut source = String::from("int f(char *s, char *out) { int acc = 0;\n");
    for i in 0..16 {
        source.push_str(&format!("if ((s[{i}] >> 1) & 1) acc += {i};\n"));
    }
    source.push_str("out[0] = acc + s[0] + s[1]; return 0; }");
    let options = AnalyzerOptions {
        max_paths: 8,
        ..AnalyzerOptions::default()
    };
    let report = Analyzer::from_sources(&source, GOOD_EDL, options)
        .expect("builds")
        .analyze("f")
        .expect("analyzes");
    assert!(report.is_degraded(), "{report}");
    assert!(report
        .degradations
        .iter()
        .any(|d| matches!(d, Degradation::PathBudget { .. })));
    let text = report.to_string();
    assert!(text.contains("Degradations:"), "{text}");
    assert!(text.contains("lower bound"), "{text}");
}

#[test]
fn exceeded_deadline_degrades_instead_of_failing() {
    // A pre-expired deadline pins the wave cutoff at 0, making the
    // degraded result deterministic regardless of machine speed.
    let source = "int f(char *s, char *out) { out[0] = s[0]; return 0; }";
    let options = AnalyzerOptions {
        deadline_ms: Some(0),
        ..AnalyzerOptions::default()
    };
    let report = Analyzer::from_sources(source, GOOD_EDL, options)
        .expect("builds")
        .analyze("f")
        .expect("returns Ok despite the deadline");
    assert!(report.stats.exhausted);
    assert!(report.is_degraded());
    assert!(
        report.degradations.iter().any(|d| matches!(
            d,
            Degradation::DeadlineExceeded {
                wave: 0,
                dropped: 1
            }
        )),
        "{report}"
    );
    assert!(report.to_string().contains("deadline exceeded at wave 0"));
}

#[test]
fn deadline_degraded_run_is_identical_across_worker_counts() {
    let mut source = String::from("int f(char *s, char *out) { int acc = 0;\n");
    for i in 0..6 {
        source.push_str(&format!("if ((s[{i}] >> 1) & 1) acc += {i};\n"));
    }
    source.push_str("out[0] = acc; return 0; }");
    let run = |workers: usize| {
        let options = AnalyzerOptions {
            deadline_ms: Some(0),
            workers,
            ..AnalyzerOptions::default()
        };
        let mut report = Analyzer::from_sources(&source, GOOD_EDL, options)
            .expect("builds")
            .analyze("f")
            .expect("analyzes");
        // wall-clock time is the one legitimately nondeterministic field
        report.stats.time = std::time::Duration::ZERO;
        report
    };
    let sequential = run(1);
    let parallel = run(4);
    assert_eq!(
        sequential, parallel,
        "deadline-degraded output diverged across worker counts"
    );
    assert_eq!(sequential.degradations, parallel.degradations);
    assert!(sequential
        .degradations
        .iter()
        .any(|d| matches!(d, Degradation::DeadlineExceeded { wave: 0, .. })));
}

#[test]
fn panicking_path_task_is_isolated_across_worker_counts() {
    // `boom` is reached only on the s[0] > 0 path; the injected panic must
    // surface as a ledger entry while the sibling path's verdict survives,
    // byte-identically at every worker count.
    let source = "void boom(void);\n\
                  int f(char *s, char *out) {\n\
                      int hit = 0;\n\
                      if (s[0] > 0) hit = 1;\n\
                      if (hit) boom();\n\
                      out[0] = s[1];\n\
                      return hit; }";
    let run = |workers: usize| {
        let options = AnalyzerOptions {
            workers,
            inject_panic_on_call: Some("boom".into()),
            ..AnalyzerOptions::default()
        };
        let mut report = Analyzer::from_sources(source, GOOD_EDL, options)
            .expect("builds")
            .analyze("f")
            .expect("returns Ok despite the panic");
        report.stats.time = std::time::Duration::ZERO;
        report
    };
    let sequential = run(1);
    let parallel = run(4);
    assert_eq!(sequential, parallel, "panic isolation diverged");
    assert!(sequential.is_degraded());
    assert!(
        sequential.degradations.iter().any(
            |d| matches!(d, Degradation::PathPanicked { message } if message.contains("boom"))
        ),
        "{sequential}"
    );
    // The surviving path still emits its explicit leak.
    assert!(
        sequential
            .explicit_findings()
            .any(|f| f.channel == "out[0]" && f.secret == "s[1]"),
        "{sequential}"
    );
    assert!(sequential.to_string().contains("panicked"));
}

const OCALL_SOURCE: &str = "void ocall_log(int v);\n\
                            int f(char *s, char *out) {\n\
                                ocall_log(1);\n\
                                out[0] = s[0] + 1;\n\
                                return 0; }";

const OCALL_EDL: &str = "enclave {\n\
                         trusted { public int f([in] char *s, [out] char *out); };\n\
                         untrusted { void ocall_log(int v); };\n\
                         };";

#[test]
fn injected_ocall_fault_without_retry_is_a_transient_typed_error() {
    let enclave = Enclave::load(OCALL_SOURCE, OCALL_EDL).expect("loads");
    let mut session = enclave
        .session()
        .expect("opens")
        .with_faults(FaultPlan::new().fail_ocall(0));
    let err = session
        .ecall("f", &[EcallArg::In(vec![Word::Int(3)]), EcallArg::Out(1)])
        .expect_err("the fault must surface");
    assert!(err.is_transient(), "{err}");
    assert!(matches!(err, SgxError::Ocall { index: 0, .. }), "{err}");
    assert_eq!(session.injected_faults(), &[Fault::FailOcall { nth: 0 }]);
}

#[test]
fn transient_ocall_fault_within_retry_budget_yields_a_clean_run() {
    let enclave = Enclave::load(OCALL_SOURCE, OCALL_EDL).expect("loads");
    let mut session = enclave
        .session()
        .expect("opens")
        .with_faults(FaultPlan::new().fail_ocall(0))
        .with_retry(RetryPolicy::retries(2));
    let result = session
        .ecall("f", &[EcallArg::In(vec![Word::Int(3)]), EcallArg::Out(1)])
        .expect("the retry must absorb the fault");
    // The successful attempt's observable output is clean: exactly one
    // OCALL, the correct [out] contents, one retry on the books.
    assert_eq!(result.outs["out"], vec![Word::Int(4)]);
    assert_eq!(result.ocalls.len(), 1);
    assert_eq!(session.retries(), 1);
}

#[test]
fn fault_beyond_the_retry_budget_still_fails_typed() {
    let enclave = Enclave::load(OCALL_SOURCE, OCALL_EDL).expect("loads");
    // fail the first two OCALL attempts; only one retry allowed
    let mut session = enclave
        .session()
        .expect("opens")
        .with_faults(FaultPlan::new().fail_ocall(0).fail_ocall(1))
        .with_retry(RetryPolicy::retries(1));
    let err = session
        .ecall("f", &[EcallArg::In(vec![Word::Int(3)]), EcallArg::Out(1)])
        .expect_err("budget exhausted");
    assert!(err.is_transient());
    assert_eq!(session.retries(), 1);
}

#[test]
fn supervised_retry_backoff_cannot_sleep_past_the_deadline() {
    use std::time::{Duration, Instant};
    let enclave = Enclave::load(OCALL_SOURCE, OCALL_EDL).expect("loads");
    // Every OCALL attempt fails, the policy would sleep 50ms + 100ms +
    // 200ms + ... — but the supervision budget is 20ms, so the whole call
    // must return well before the unsupervised backoff schedule.
    let mut session = enclave
        .session()
        .expect("opens")
        .with_faults(
            FaultPlan::new()
                .fail_ocall(0)
                .fail_ocall(1)
                .fail_ocall(2)
                .fail_ocall(3),
        )
        .with_retry(RetryPolicy {
            max_retries: 3,
            backoff: Duration::from_millis(50),
        })
        .with_supervision(Supervision::new().with_budget(Duration::from_millis(20)));
    let started = Instant::now();
    let err = session
        .ecall("f", &[EcallArg::In(vec![Word::Int(3)]), EcallArg::Out(1)])
        .expect_err("the fault still surfaces");
    assert!(err.is_transient(), "{err}");
    assert!(
        started.elapsed() < Duration::from_millis(150),
        "supervised retries slept past the budget: {:?}",
        started.elapsed()
    );
    assert!(
        session
            .degradations()
            .iter()
            .any(|d| matches!(d, Degradation::RetryCurtailed { .. })),
        "curtailed retries must be on the ledger: {:?}",
        session.degradations()
    );
}

#[test]
fn cancelled_session_stops_retrying_without_sleeping() {
    use std::time::{Duration, Instant};
    let enclave = Enclave::load(OCALL_SOURCE, OCALL_EDL).expect("loads");
    let cancel = symexec::CancelToken::new();
    cancel.cancel();
    let mut session = enclave
        .session()
        .expect("opens")
        .with_faults(FaultPlan::new().fail_ocall(0).fail_ocall(1))
        .with_retry(RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_millis(200),
        })
        .with_supervision(Supervision::new().with_cancel(cancel));
    let started = Instant::now();
    let err = session
        .ecall("f", &[EcallArg::In(vec![Word::Int(3)]), EcallArg::Out(1)])
        .expect_err("cancelled before any retry could succeed");
    assert!(err.is_transient(), "{err}");
    assert!(
        started.elapsed() < Duration::from_millis(100),
        "a cancelled session must not sleep: {:?}",
        started.elapsed()
    );
    assert_eq!(
        session.degradations(),
        &[Degradation::RetryCurtailed { count: 1 }]
    );
    // No retry actually ran: the budget was spent before the first sleep.
    assert_eq!(session.retries(), 0);
}

#[test]
fn injected_delay_is_bounded_by_the_supervision_budget() {
    use std::time::{Duration, Instant};
    let enclave = Enclave::load(OCALL_SOURCE, OCALL_EDL).expect("loads");
    let mut session = enclave
        .session()
        .expect("opens")
        .with_faults(FaultPlan::new().delay_ecall(0, 500))
        .with_supervision(Supervision::new().with_budget(Duration::from_millis(10)));
    let started = Instant::now();
    let result = session
        .ecall("f", &[EcallArg::In(vec![Word::Int(9)]), EcallArg::Out(1)])
        .expect("a truncated delay is not a failure");
    assert!(
        started.elapsed() < Duration::from_millis(400),
        "the injected delay slept past the budget: {:?}",
        started.elapsed()
    );
    assert_eq!(result.outs["out"], vec![Word::Int(10)]);
    assert_eq!(
        session.degradations(),
        &[Degradation::RetryCurtailed { count: 1 }]
    );
}

#[test]
fn truncated_out_buffer_is_a_short_read_not_a_crash() {
    let source = "int f(char *s, char *out) {\n\
                  out[0] = 1; out[1] = 2; out[2] = 3;\n\
                  return 0; }";
    let edl = "enclave { trusted { public int f([in] char *s, [out, count=3] char *out); }; };";
    let enclave = Enclave::load(source, edl).expect("loads");
    let mut session = enclave
        .session()
        .expect("opens")
        .with_faults(FaultPlan::new().truncate_out(0, "out", 1));
    let result = session
        .ecall("f", &[EcallArg::In(vec![Word::Int(0)]), EcallArg::Out(3)])
        .expect("truncation is not fatal");
    assert_eq!(result.outs["out"], vec![Word::Int(1)], "{result:?}");
}

#[test]
fn scheduled_seal_corruption_is_detected_at_unseal() {
    let source = "int f(char *s, char *out) { return 0; }";
    let enclave = Enclave::load(source, GOOD_EDL).expect("loads");
    let mut session = enclave
        .session()
        .expect("opens")
        .with_faults(FaultPlan::new().corrupt_seal(1));
    let good = session.seal(0, b"weights");
    let corrupted = session.seal(1, b"weights");
    assert_eq!(enclave.unseal(&good).expect("intact blob"), b"weights");
    assert!(matches!(
        enclave.unseal(&corrupted).expect_err("must be rejected"),
        SgxError::Sealing(_)
    ));
    assert_eq!(session.injected_faults(), &[Fault::CorruptSeal { nth: 1 }]);
}

#[test]
fn delayed_ecall_only_adds_latency() {
    let enclave = Enclave::load(OCALL_SOURCE, OCALL_EDL).expect("loads");
    let mut session = enclave
        .session()
        .expect("opens")
        .with_faults(FaultPlan::new().delay_ecall(0, 1));
    let started = std::time::Instant::now();
    let result = session
        .ecall("f", &[EcallArg::In(vec![Word::Int(9)]), EcallArg::Out(1)])
        .expect("a delay is not a failure");
    assert!(started.elapsed() >= std::time::Duration::from_millis(1));
    assert_eq!(result.outs["out"], vec![Word::Int(10)]);
    assert_eq!(
        session.injected_faults(),
        &[Fault::DelayEcall { nth: 0, millis: 1 }]
    );
}

#[test]
fn seeded_fault_plans_reproduce_identical_sessions() {
    let enclave = Enclave::load(OCALL_SOURCE, OCALL_EDL).expect("loads");
    let run = |seed: u64| {
        let mut session = enclave
            .session()
            .expect("opens")
            .with_faults(FaultPlan::seeded(seed, 4))
            .with_retry(RetryPolicy::retries(4));
        let outcome = session
            .ecall("f", &[EcallArg::In(vec![Word::Int(3)]), EcallArg::Out(1)])
            .map_err(|e| e.to_string());
        (
            outcome,
            session.injected_faults().to_vec(),
            session.retries(),
        )
    };
    assert_eq!(FaultPlan::seeded(7, 4), FaultPlan::seeded(7, 4));
    assert_eq!(run(7), run(7), "same seed must replay identically");
}
